//! TLS endpoints: what a Censys-style banner grab sees at port 443.
//!
//! We do not simulate the TLS handshake cryptography — the measurement
//! only needs the certificate chain a server *presents*. The endpoint
//! service answers any probe with a compact textual banner carrying the
//! served certificate's identifying fields; `ruwhere-scan` parses it back
//! into a [`ChainSummary`].

use parking_lot::RwLock;
use ruwhere_ct::Certificate;
use ruwhere_netsim::{Service, SimTime};
use ruwhere_types::{Date, DomainName};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The port the Censys-style sweep probes.
pub const TLS_PORT: u16 = 443;

/// The certificate-chain information visible in a banner grab.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainSummary {
    /// Leaf subject common name.
    pub subject_cn: String,
    /// Subject alternative names.
    pub san: Vec<DomainName>,
    /// Leaf issuer organization.
    pub issuer_org: String,
    /// Organizations up the chain (roots last).
    pub chain_orgs: Vec<String>,
    /// Issuer-scoped serial.
    pub serial: u64,
    /// Validity start.
    pub not_before: Date,
    /// Validity end.
    pub not_after: Date,
}

impl ChainSummary {
    /// Build from a full certificate.
    pub fn from_certificate(cert: &Certificate) -> Self {
        ChainSummary {
            subject_cn: cert.subject_cn.clone(),
            san: cert.san.clone(),
            issuer_org: cert.issuer.organization.clone(),
            chain_orgs: cert.chain_orgs.clone(),
            serial: cert.serial,
            not_before: cert.not_before,
            not_after: cert.not_after,
        }
    }

    /// Whether any organization in the presented chain matches `org`.
    pub fn chain_contains_org(&self, org: &str) -> bool {
        self.issuer_org == org || self.chain_orgs.iter().any(|o| o == org)
    }

    /// Serialize to the banner wire format (line-oriented, fields escaped).
    pub fn to_banner(&self) -> Vec<u8> {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('\n', "\\n");
        let mut out = String::from("RUTLS/1\n");
        out.push_str(&format!("cn:{}\n", esc(&self.subject_cn)));
        for s in &self.san {
            out.push_str(&format!("san:{}\n", s));
        }
        out.push_str(&format!("issuer:{}\n", esc(&self.issuer_org)));
        for o in &self.chain_orgs {
            out.push_str(&format!("chain:{}\n", esc(o)));
        }
        out.push_str(&format!("serial:{}\n", self.serial));
        out.push_str(&format!("nb:{}\n", self.not_before));
        out.push_str(&format!("na:{}\n", self.not_after));
        out.into_bytes()
    }

    /// Parse the banner wire format; `None` for anything malformed.
    pub fn from_banner(data: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(data).ok()?;
        let mut lines = text.lines();
        if lines.next()? != "RUTLS/1" {
            return None;
        }
        let unesc = |s: &str| s.replace("\\n", "\n").replace("\\\\", "\\");
        let mut cn = None;
        let mut san = Vec::new();
        let mut issuer = None;
        let mut chain = Vec::new();
        let mut serial = None;
        let mut nb = None;
        let mut na = None;
        for line in lines {
            let (key, value) = line.split_once(':')?;
            match key {
                "cn" => cn = Some(unesc(value)),
                "san" => san.push(value.parse().ok()?),
                "issuer" => issuer = Some(unesc(value)),
                "chain" => chain.push(unesc(value)),
                "serial" => serial = Some(value.parse().ok()?),
                "nb" => nb = Some(value.parse().ok()?),
                "na" => na = Some(value.parse().ok()?),
                _ => return None,
            }
        }
        Some(ChainSummary {
            subject_cn: cn?,
            san,
            issuer_org: issuer?,
            chain_orgs: chain,
            serial: serial?,
            not_before: nb?,
            not_after: na?,
        })
    }
}

/// Shared map of endpoint address → currently served chain. The world
/// driver updates it as domains renew or switch certificates.
pub type ServingMap = Arc<RwLock<HashMap<Ipv4Addr, ChainSummary>>>;

/// The per-address TLS banner service.
pub struct TlsEndpoint {
    serving: ServingMap,
    addr: Ipv4Addr,
}

impl TlsEndpoint {
    /// Endpoint at `addr` serving whatever `serving[addr]` currently holds.
    pub fn new(serving: ServingMap, addr: Ipv4Addr) -> Self {
        TlsEndpoint { serving, addr }
    }
}

impl Service for TlsEndpoint {
    fn handle(&mut self, _payload: &[u8], _src: (Ipv4Addr, u16), _now: SimTime) -> Option<Vec<u8>> {
        self.serving.read().get(&self.addr).map(|c| c.to_banner())
    }

    fn processing_us(&self) -> u64 {
        500 // handshake-ish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> ChainSummary {
        ChainSummary {
            subject_cn: "example.ru".into(),
            san: vec![
                "example.ru".parse().unwrap(),
                "www.example.ru".parse().unwrap(),
            ],
            issuer_org: "Let's Encrypt".into(),
            chain_orgs: vec!["Internet Security Research Group".into()],
            serial: 12345,
            not_before: Date::from_ymd(2022, 1, 15),
            not_after: Date::from_ymd(2022, 4, 15),
        }
    }

    #[test]
    fn banner_roundtrip() {
        let s = summary();
        let banner = s.to_banner();
        assert_eq!(ChainSummary::from_banner(&banner).unwrap(), s);
    }

    #[test]
    fn banner_roundtrip_with_escapes() {
        let mut s = summary();
        s.subject_cn = "weird\nname\\with stuff".into();
        s.chain_orgs = vec!["Org\nWith\nNewlines".into()];
        let banner = s.to_banner();
        assert_eq!(ChainSummary::from_banner(&banner).unwrap(), s);
    }

    #[test]
    fn malformed_banners_rejected() {
        assert!(ChainSummary::from_banner(b"").is_none());
        assert!(ChainSummary::from_banner(b"HTTP/1.1 200 OK\n").is_none());
        assert!(ChainSummary::from_banner(b"RUTLS/1\ncn:x\n").is_none()); // missing fields
        assert!(ChainSummary::from_banner(b"RUTLS/1\nbogus:x\n").is_none());
        assert!(ChainSummary::from_banner(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn endpoint_serves_current_chain() {
        let serving: ServingMap = Arc::new(RwLock::new(HashMap::new()));
        let addr: Ipv4Addr = "198.51.100.7".parse().unwrap();
        let mut ep = TlsEndpoint::new(Arc::clone(&serving), addr);
        let src = ("10.0.0.1".parse().unwrap(), 55555);

        // Nothing served yet: silent (no TLS on this box).
        assert!(ep.handle(b"hello", src, SimTime::ZERO).is_none());

        serving.write().insert(addr, summary());
        let banner = ep.handle(b"hello", src, SimTime::ZERO).unwrap();
        assert_eq!(
            ChainSummary::from_banner(&banner).unwrap().issuer_org,
            "Let's Encrypt"
        );

        // Certificate rotation is visible immediately.
        let mut rotated = summary();
        rotated.issuer_org = "Russian Trusted Root CA".into();
        serving.write().insert(addr, rotated);
        let banner = ep.handle(b"hello", src, SimTime::ZERO).unwrap();
        assert_eq!(
            ChainSummary::from_banner(&banner).unwrap().issuer_org,
            "Russian Trusted Root CA"
        );
    }

    #[test]
    fn chain_org_matching() {
        let mut s = summary();
        s.chain_orgs.push("Russian Trusted Root CA".into());
        assert!(s.chain_contains_org("Russian Trusted Root CA"));
        assert!(s.chain_contains_org("Let's Encrypt"));
        assert!(!s.chain_contains_org("DigiCert"));
    }
}
