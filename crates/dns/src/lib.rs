//! DNS wire format and zone files.
//!
//! This crate implements the subset of RFC 1035 (plus AAAA from RFC 3596 and
//! DS from RFC 4034) needed to run a faithful active-DNS measurement
//! pipeline:
//!
//! * [`Name`] — wire-format domain names with RFC 1035 §4.1.4 message
//!   compression on encode and pointer-chasing (with loop protection) on
//!   decode.
//! * [`Record`] / [`RData`] — resource records: A, AAAA, NS, CNAME, SOA, MX,
//!   TXT, DS.
//! * [`Message`] — full query/response messages with header flags, questions
//!   and the three record sections.
//! * [`zone`] — an in-memory zone representation plus a master-file-style
//!   textual format, used by the registry simulator to publish daily zone
//!   snapshots and by the authoritative servers to load them.
//!
//! Everything round-trips: `decode(encode(m)) == m` is enforced by unit and
//! property tests, and malformed input never panics — decoding returns
//! [`WireError`].
//!
//! ```
//! use ruwhere_dns::{Message, RData, RType, Rcode, Record};
//!
//! let query = Message::query(7, "example.ru".parse().unwrap(), RType::A);
//! let mut resp = Message::response_to(&query, Rcode::NoError);
//! resp.answers.push(Record::new(
//!     "example.ru".parse().unwrap(),
//!     300,
//!     RData::A("192.0.2.1".parse().unwrap()),
//! ));
//! let wire = resp.encode().unwrap();
//! assert_eq!(Message::decode(&wire).unwrap(), resp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod name;
pub mod rdata;
pub mod wire;
pub mod zone;

pub use message::{Flags, Message, Opcode, Question, Rcode};
pub use name::Name;
pub use rdata::{RData, RType, Record, SoaData, CLASS_IN};
pub use wire::{WireError, MAX_MESSAGE_SIZE};
pub use zone::{Zone, ZoneDiff, ZoneParseError};
