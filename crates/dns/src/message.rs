//! DNS messages: header, question, and record sections.

use crate::name::Name;
use crate::rdata::{RType, Record, CLASS_IN};
use crate::wire::{Decoder, Encoder, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation code (header OPCODE field). We only speak standard queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Anything else, preserved numerically.
    Other(u8),
}

impl Opcode {
    fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(c) => c & 0x0F,
        }
    }

    fn from_code(c: u8) -> Self {
        match c & 0x0F {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused (e.g. a provider that has terminated service — this is the
    /// rcode our simulated post-sanctions providers return).
    Refused,
    /// Any other code, preserved numerically.
    Other(u8),
}

impl Rcode {
    fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0x0F,
        }
    }

    fn from_code(c: u8) -> Self {
        match c & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Other(c) => write!(f, "RCODE{c}"),
        }
    }
}

/// Header flag bits (QR, AA, TC, RD, RA) plus opcode and rcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Flags {
    /// Response (vs query).
    pub qr: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Flags {
    fn encode(self) -> u16 {
        (u16::from(self.qr) << 15)
            | (u16::from(self.opcode.code()) << 11)
            | (u16::from(self.aa) << 10)
            | (u16::from(self.tc) << 9)
            | (u16::from(self.rd) << 8)
            | (u16::from(self.ra) << 7)
            | u16::from(self.rcode.code())
    }

    fn decode(bits: u16) -> Self {
        Flags {
            qr: bits & 0x8000 != 0,
            opcode: Opcode::from_code((bits >> 11) as u8),
            aa: bits & 0x0400 != 0,
            tc: bits & 0x0200 != 0,
            rd: bits & 0x0100 != 0,
            ra: bits & 0x0080 != 0,
            rcode: Rcode::from_code(bits as u8),
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub rtype: RType,
}

impl Question {
    /// Convenience constructor.
    pub fn new(name: Name, rtype: RType) -> Self {
        Question { name, rtype }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} IN {}", self.name, self.rtype)
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS records of the delegated zone on referral).
    pub authorities: Vec<Record>,
    /// Additional section (glue).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Build a standard recursive query for `name`/`rtype`.
    pub fn query(id: u16, name: Name, rtype: RType) -> Self {
        Message {
            id,
            flags: Flags {
                rd: true,
                ..Flags::default()
            },
            questions: vec![Question::new(name, rtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build a response skeleton mirroring a query's id and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                opcode: query.flags.opcode,
                rd: query.flags.rd,
                rcode,
                ..Flags::default()
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut e = Encoder::new();
        e.put_u16(self.id);
        e.put_u16(self.flags.encode());
        e.put_u16(self.questions.len() as u16);
        e.put_u16(self.answers.len() as u16);
        e.put_u16(self.authorities.len() as u16);
        e.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            q.name.encode(&mut e);
            e.put_u16(q.rtype.code());
            e.put_u16(CLASS_IN);
        }
        for r in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            r.encode(&mut e);
        }
        e.finish()
    }

    /// Decode from wire bytes; rejects trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let id = d.get_u16()?;
        let flags = Flags::decode(d.get_u16()?);
        let qd = d.get_u16()? as usize;
        let an = d.get_u16()? as usize;
        let ns = d.get_u16()? as usize;
        let ar = d.get_u16()? as usize;

        let mut questions = Vec::with_capacity(qd.min(32));
        for _ in 0..qd {
            let name = Name::decode(&mut d)?;
            let code = d.get_u16()?;
            let rtype = RType::from_code(code).ok_or(WireError::UnknownType(code))?;
            let _class = d.get_u16()?;
            questions.push(Question { name, rtype });
        }
        let read_section = |n: usize, d: &mut Decoder<'_>| -> Result<Vec<Record>, WireError> {
            let mut v = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                v.push(Record::decode(d)?);
            }
            Ok(v)
        };
        let answers = read_section(an, &mut d)?;
        let authorities = read_section(ns, &mut d)?;
        let additionals = read_section(ar, &mut d)?;
        if d.remaining() != 0 {
            return Err(WireError::TrailingBytes(d.remaining()));
        }
        Ok(Message {
            id,
            flags,
            questions,
            answers,
            authorities,
            additionals,
        })
    }

    /// Whether this message is a response.
    pub fn is_response(&self) -> bool {
        self.flags.qr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, name("example.ru"), RType::Ns);
        let buf = q.encode().unwrap();
        assert_eq!(Message::decode(&buf).unwrap(), q);
        assert!(!q.is_response());
        assert!(q.flags.rd);
    }

    #[test]
    fn response_roundtrip_with_all_sections() {
        let q = Message::query(7, name("example.ru"), RType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.flags.aa = true;
        r.answers.push(Record::new(
            name("example.ru"),
            300,
            RData::A("198.51.100.9".parse().unwrap()),
        ));
        r.authorities.push(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns1.example.ru")),
        ));
        r.additionals.push(Record::new(
            name("ns1.example.ru"),
            3600,
            RData::A("198.51.100.53".parse().unwrap()),
        ));
        let buf = r.encode().unwrap();
        let back = Message::decode(&buf).unwrap();
        assert_eq!(back, r);
        assert!(back.is_response());
        assert_eq!(back.flags.rcode, Rcode::NoError);
    }

    #[test]
    fn response_mirrors_query() {
        let q = Message::query(42, name("a.ru"), RType::Aaaa);
        let r = Message::response_to(&q, Rcode::NxDomain);
        assert_eq!(r.id, 42);
        assert_eq!(r.questions, q.questions);
        assert_eq!(r.flags.rcode, Rcode::NxDomain);
        assert!(r.flags.qr);
    }

    #[test]
    fn flag_bits_roundtrip() {
        for qr in [false, true] {
            for aa in [false, true] {
                for tc in [false, true] {
                    for rd in [false, true] {
                        for ra in [false, true] {
                            let f = Flags {
                                qr,
                                opcode: Opcode::Query,
                                aa,
                                tc,
                                rd,
                                ra,
                                rcode: Rcode::Refused,
                            };
                            assert_eq!(Flags::decode(f.encode()), f);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rcode_roundtrip() {
        for c in 0..16u8 {
            assert_eq!(Rcode::from_code(c).code(), c);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let q = Message::query(1, name("x.ru"), RType::A);
        let mut buf = q.encode().unwrap();
        buf.push(0);
        assert_eq!(Message::decode(&buf), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Message::decode(&[0, 1, 2]), Err(WireError::Truncated));
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn section_count_lies_rejected() {
        // Header claims one question but provides none.
        let mut e = Encoder::new();
        e.put_u16(1);
        e.put_u16(0);
        e.put_u16(1); // qdcount
        e.put_u16(0);
        e.put_u16(0);
        e.put_u16(0);
        let buf = e.finish().unwrap();
        assert_eq!(Message::decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn compression_across_sections() {
        // All records share the owner suffix; the encoded message must be
        // smaller than the sum of uncompressed parts.
        let q = Message::query(
            9,
            name("verylonglabel-for-compression.example.ru"),
            RType::Ns,
        );
        let mut r = Message::response_to(&q, Rcode::NoError);
        for i in 0..4 {
            r.answers.push(Record::new(
                name("verylonglabel-for-compression.example.ru"),
                300,
                RData::Ns(name(&format!("ns{i}.example.ru"))),
            ));
        }
        let buf = r.encode().unwrap();
        let uncompressed: usize = 12
            + r.questions[0].name.wire_len()
            + 4
            + r.answers
                .iter()
                .map(
                    |rec| rec.name.wire_len() + 10 + 16, /* ns name approx */
                )
                .sum::<usize>();
        assert!(
            buf.len() < uncompressed,
            "{} !< {}",
            buf.len(),
            uncompressed
        );
        assert_eq!(Message::decode(&buf).unwrap(), r);
    }
}
