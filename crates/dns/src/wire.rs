//! Low-level wire encoding/decoding primitives.
//!
//! [`Encoder`] owns the output buffer and the name-compression table;
//! [`Decoder`] is a bounds-checked cursor over the full message (decoding
//! names requires random access for compression pointers, so the decoder
//! keeps the entire message slice).

use bytes::{BufMut, BytesMut};
use std::collections::HashMap;
use std::fmt;

/// Maximum DNS message size we accept (EDNS-sized; we do not implement
/// truncation/TCP fallback — the simulated transport delivers whole
/// datagrams).
pub const MAX_MESSAGE_SIZE: usize = 4096;

/// Errors produced while decoding (or, rarely, encoding) wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete field.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label exceeded 63 octets or a name exceeded 255 octets.
    NameTooLong,
    /// A label length byte used the reserved `0b10`/`0b01` prefix.
    BadLabelType(u8),
    /// RDATA length did not match the records's actual encoding.
    BadRdataLength,
    /// An unknown resource-record type appeared where we must parse RDATA.
    UnknownType(u16),
    /// Trailing garbage after the final section.
    TrailingBytes(usize),
    /// The message exceeded [`MAX_MESSAGE_SIZE`] on encode.
    TooBig(usize),
    /// Label content failed validation (e.g. non-ASCII in presentation form).
    BadLabel,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::NameTooLong => write!(f, "name exceeds RFC 1035 limits"),
            WireError::BadLabelType(b) => write!(f, "reserved label type byte {b:#04x}"),
            WireError::BadRdataLength => write!(f, "rdata length mismatch"),
            WireError::UnknownType(t) => write!(f, "unknown RR type {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::TooBig(n) => {
                write!(f, "encoded message is {n} bytes (limit {MAX_MESSAGE_SIZE})")
            }
            WireError::BadLabel => write!(f, "invalid label content"),
        }
    }
}

impl std::error::Error for WireError {}

/// Wire encoder with RFC 1035 §4.1.4 name compression.
pub struct Encoder {
    buf: BytesMut,
    /// Canonical (lowercase) name suffix → offset of its first occurrence.
    /// Only offsets < 0x3FFF are eligible as compression targets.
    names: HashMap<Vec<u8>, u16>,
}

impl Encoder {
    /// New encoder with a reasonable initial capacity.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(512),
            names: HashMap::new(),
        }
    }

    /// Current output length (also the offset of the next byte).
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Patch a previously written u16 (used for RDLENGTH back-patching).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Look up a compression target for a canonical suffix key.
    pub(crate) fn lookup_suffix(&self, key: &[u8]) -> Option<u16> {
        self.names.get(key).copied()
    }

    /// Remember a suffix occurrence for future compression.
    pub(crate) fn remember_suffix(&mut self, key: Vec<u8>, offset: usize) {
        if offset <= 0x3FFF {
            self.names.entry(key).or_insert(offset as u16);
        }
    }

    /// Finish encoding, enforcing the size limit.
    pub fn finish(self) -> Result<Vec<u8>, WireError> {
        let v = self.buf.to_vec();
        if v.len() > MAX_MESSAGE_SIZE {
            return Err(WireError::TooBig(v.len()));
        }
        Ok(v)
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Bounds-checked decoding cursor over a complete message.
pub struct Decoder<'a> {
    msg: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// New decoder over `msg`.
    pub fn new(msg: &'a [u8]) -> Self {
        Decoder { msg, pos: 0 }
    }

    /// Full message slice (for pointer chasing).
    pub fn message(&self) -> &'a [u8] {
        self.msg
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.msg.len() - self.pos
    }

    /// Advance the cursor by `n`.
    pub fn skip(&mut self, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        self.pos += n;
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let v = self.msg[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        if self.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        let v = u16::from_be_bytes([self.msg[self.pos], self.msg[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        if self.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        let v = u32::from_be_bytes([
            self.msg[self.pos],
            self.msg[self.pos + 1],
            self.msg[self.pos + 2],
            self.msg[self.pos + 3],
        ]);
        self.pos += 4;
        Ok(v)
    }

    /// Read `n` raw bytes.
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.msg[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Move the cursor to an absolute position (bounds-checked).
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.msg.len() {
            return Err(WireError::Truncated);
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_basics() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0x1234);
        e.put_u32(0xDEADBEEF);
        e.put_slice(b"xyz");
        let out = e.finish().unwrap();
        assert_eq!(
            out,
            [0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, b'x', b'y', b'z']
        );
    }

    #[test]
    fn patching() {
        let mut e = Encoder::new();
        e.put_u16(0);
        let at = 0;
        e.put_slice(b"abc");
        e.patch_u16(at, 3);
        assert_eq!(e.finish().unwrap(), [0, 3, b'a', b'b', b'c']);
    }

    #[test]
    fn decoder_bounds() {
        let data = [1u8, 2, 3];
        let mut d = Decoder::new(&data);
        assert_eq!(d.get_u16().unwrap(), 0x0102);
        assert_eq!(d.remaining(), 1);
        assert_eq!(d.get_u16(), Err(WireError::Truncated));
        assert_eq!(d.get_u8().unwrap(), 3);
        assert_eq!(d.get_u8(), Err(WireError::Truncated));
        assert!(d.seek(3).is_ok());
        assert_eq!(d.seek(4), Err(WireError::Truncated));
    }

    #[test]
    fn size_limit() {
        let mut e = Encoder::new();
        e.put_slice(&vec![0u8; MAX_MESSAGE_SIZE + 1]);
        assert!(matches!(e.finish(), Err(WireError::TooBig(_))));
    }
}
