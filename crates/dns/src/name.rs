//! Wire-format domain names with compression.

use crate::wire::{Decoder, Encoder, WireError};
use ruwhere_types::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum total wire length of a name (RFC 1035 §2.3.4).
const MAX_WIRE_LEN: usize = 255;
/// Maximum label length.
const MAX_LABEL_LEN: usize = 63;
/// Safety cap on compression-pointer hops while decoding.
const MAX_POINTER_HOPS: usize = 64;

/// A DNS name in wire form: a sequence of lowercase labels. The root name
/// has zero labels.
///
/// ```
/// use ruwhere_dns::Name;
/// let n: Name = "www.example.ru".parse().unwrap();
/// assert_eq!(n.label_count(), 3);
/// assert_eq!(n.to_string(), "www.example.ru.");
/// assert!(n.is_subdomain_of(&"example.ru".parse().unwrap()));
/// assert!(Name::root().is_root());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Box<[u8]>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Build a name from presentation labels. Each label is lowercased and
    /// validated for length and ASCII content.
    pub fn from_labels<I, S>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        let mut wire_len = 1usize; // terminal zero octet
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > MAX_LABEL_LEN {
                return Err(WireError::NameTooLong);
            }
            if !l.iter().all(|b| b.is_ascii() && *b != b'.') {
                return Err(WireError::BadLabel);
            }
            wire_len += 1 + l.len();
            out.push(l.to_ascii_lowercase().into_boxed_slice());
        }
        if wire_len > MAX_WIRE_LEN {
            return Err(WireError::NameTooLong);
        }
        Ok(Name { labels: out })
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterate over labels (leftmost first).
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_ref())
    }

    /// The parent name (one label removed from the left), or `None` at root.
    pub fn parent(&self) -> Option<Name> {
        if self.is_root() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Whether `self` is equal to or a subdomain of `ancestor`.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        let n = ancestor.labels.len();
        if self.labels.len() < n {
            return false;
        }
        self.labels[self.labels.len() - n..] == ancestor.labels[..]
    }

    /// Wire length of this name when encoded without compression.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Encode into `enc`, compressing against (and registering with) the
    /// encoder's suffix table.
    pub fn encode(&self, enc: &mut Encoder) {
        // Walk suffixes from the full name down; at the first suffix already
        // present in the table, emit a pointer and stop.
        for i in 0..self.labels.len() {
            let key = Self::suffix_key(&self.labels[i..]);
            if let Some(off) = enc.lookup_suffix(&key) {
                enc.put_u16(0xC000 | off);
                return;
            }
            enc.remember_suffix(key, enc.position());
            let label = &self.labels[i];
            enc.put_u8(label.len() as u8);
            enc.put_slice(label);
        }
        enc.put_u8(0);
    }

    /// Encode without compression (used inside RDATA where some historical
    /// servers choke on pointers; also for deterministic digest input).
    pub fn encode_uncompressed(&self, enc: &mut Encoder) {
        for label in &self.labels {
            enc.put_u8(label.len() as u8);
            enc.put_slice(label);
        }
        enc.put_u8(0);
    }

    fn suffix_key(labels: &[Box<[u8]>]) -> Vec<u8> {
        let mut key = Vec::new();
        for l in labels {
            key.push(l.len() as u8);
            key.extend_from_slice(l);
        }
        key
    }

    /// Decode a (possibly compressed) name at the decoder's cursor. The
    /// cursor ends just past the name's in-place encoding; pointer targets
    /// are followed via random access without moving the cursor there.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let msg = dec.message();
        let mut labels = Vec::new();
        let mut wire_len = 1usize;
        let mut pos = dec.position();
        let mut jumped = false;
        let mut hops = 0usize;
        let mut end_pos = None;

        loop {
            if pos >= msg.len() {
                return Err(WireError::Truncated);
            }
            let len = msg[pos];
            match len & 0xC0 {
                0x00 => {
                    pos += 1;
                    if len == 0 {
                        if end_pos.is_none() {
                            end_pos = Some(pos);
                        }
                        break;
                    }
                    let len = len as usize;
                    if pos + len > msg.len() {
                        return Err(WireError::Truncated);
                    }
                    wire_len += 1 + len;
                    if wire_len > MAX_WIRE_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(msg[pos..pos + len].to_ascii_lowercase().into_boxed_slice());
                    pos += len;
                }
                0xC0 => {
                    if pos + 1 >= msg.len() {
                        return Err(WireError::Truncated);
                    }
                    let target = (((len & 0x3F) as usize) << 8) | msg[pos + 1] as usize;
                    if end_pos.is_none() {
                        end_pos = Some(pos + 2);
                    }
                    // Pointers must point strictly backwards to prevent loops.
                    if target >= pos {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer);
                    }
                    pos = target;
                    jumped = true;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
            let _ = jumped;
        }

        dec.seek(end_pos.expect("loop sets end_pos before breaking"))?;
        Ok(Name { labels })
    }

    /// Convert to the analysis-level [`DomainName`] (fails for the root name
    /// or names with labels that are not valid hostnames).
    pub fn to_domain_name(&self) -> Option<DomainName> {
        if self.is_root() {
            return None;
        }
        DomainName::parse(&self.to_string()).ok()
    }
}

impl fmt::Display for Name {
    /// Presentation form with trailing dot; the root displays as `"."`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        for l in &self.labels {
            for &b in l.iter() {
                if b.is_ascii_graphic() && b != b'.' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "." || s.is_empty() {
            return Ok(Name::root());
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        Name::from_labels(s.split('.'))
    }
}

impl From<&DomainName> for Name {
    fn from(d: &DomainName) -> Name {
        Name::from_labels(d.labels()).expect("DomainName invariants imply valid wire name")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_dec(n: &Name) -> Name {
        let mut e = Encoder::new();
        n.encode(&mut e);
        let buf = e.finish().unwrap();
        let mut d = Decoder::new(&buf);
        Name::decode(&mut d).unwrap()
    }

    #[test]
    fn roundtrip_simple() {
        for s in [
            "example.ru.",
            "www.example.ru.",
            "xn--e1afmkfd.xn--p1ai.",
            ".",
        ] {
            let n: Name = s.parse().unwrap();
            assert_eq!(enc_dec(&n), n);
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn compression_shares_suffixes() {
        let a: Name = "ns1.example.ru.".parse().unwrap();
        let b: Name = "ns2.example.ru.".parse().unwrap();
        let mut e = Encoder::new();
        a.encode(&mut e);
        let after_a = e.position();
        b.encode(&mut e);
        let buf = e.finish().unwrap();
        // Second name must be shorter than its uncompressed form thanks to
        // the shared "example.ru." suffix: 1+3 + pointer(2) = 6 bytes.
        assert_eq!(buf.len() - after_a, 6);

        let mut d = Decoder::new(&buf);
        assert_eq!(Name::decode(&mut d).unwrap(), a);
        assert_eq!(Name::decode(&mut d).unwrap(), b);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn identical_name_is_a_single_pointer() {
        let a: Name = "example.ru.".parse().unwrap();
        let mut e = Encoder::new();
        a.encode(&mut e);
        let after_first = e.position();
        a.encode(&mut e);
        let buf = e.finish().unwrap();
        assert_eq!(buf.len() - after_first, 2);
        let mut d = Decoder::new(&buf);
        assert_eq!(Name::decode(&mut d).unwrap(), a);
        assert_eq!(Name::decode(&mut d).unwrap(), a);
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 pointing to itself.
        let buf = [0xC0, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(Name::decode(&mut d), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        let buf = [0x40, 0x00];
        let mut d = Decoder::new(&buf);
        assert_eq!(Name::decode(&mut d), Err(WireError::BadLabelType(0x40)));
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = [3, b'a', b'b']; // label promises 3 bytes, only 2 present
        let mut d = Decoder::new(&buf);
        assert_eq!(Name::decode(&mut d), Err(WireError::Truncated));
        let buf = [1, b'a']; // missing terminal zero
        let mut d = Decoder::new(&buf);
        assert_eq!(Name::decode(&mut d), Err(WireError::Truncated));
    }

    #[test]
    fn name_length_limits() {
        assert!(Name::from_labels([&b"a".repeat(64)[..]]).is_err());
        assert!(Name::from_labels([&b"a".repeat(63)[..]]).is_ok());
        // 4 * (63+1) + 1 = 257 > 255.
        let l = b"a".repeat(63);
        assert!(Name::from_labels([&l[..], &l[..], &l[..], &l[..]]).is_err());
        assert!(Name::from_labels([b"".as_slice()]).is_err());
    }

    #[test]
    fn case_insensitive() {
        let a: Name = "ExAmPlE.RU".parse().unwrap();
        let b: Name = "example.ru".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn subdomain_relation() {
        let apex: Name = "example.ru".parse().unwrap();
        let sub: Name = "a.b.example.ru".parse().unwrap();
        let other: Name = "example.com".parse().unwrap();
        assert!(sub.is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&apex));
        assert!(apex.is_subdomain_of(&Name::root()));
        assert!(!apex.is_subdomain_of(&sub));
        assert!(!other.is_subdomain_of(&apex));
    }

    #[test]
    fn parent_chain() {
        let n: Name = "a.b.ru".parse().unwrap();
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "b.ru.");
        assert_eq!(p.parent().unwrap().to_string(), "ru.");
        assert!(p.parent().unwrap().parent().unwrap().is_root());
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn domain_name_interop() {
        let d = DomainName::parse("пример.рф").unwrap();
        let n = Name::from(&d);
        assert_eq!(n.to_string(), "xn--e1afmkfd.xn--p1ai.");
        assert_eq!(n.to_domain_name().unwrap(), d);
        assert!(Name::root().to_domain_name().is_none());
    }

    #[test]
    fn pointer_chain_depth_limited() {
        // Build a long chain of backward pointers: p_i points to p_{i-1},
        // terminating at a real name at offset 0.
        let mut buf = vec![0u8]; // root name at offset 0
        for i in 0..100u16 {
            let target = if i == 0 { 0 } else { 1 + 2 * (i - 1) };
            buf.push(0xC0 | (target >> 8) as u8);
            buf.push((target & 0xFF) as u8);
        }
        let start = buf.len() - 2;
        let mut d = Decoder::new(&buf);
        d.seek(start).unwrap();
        assert_eq!(Name::decode(&mut d), Err(WireError::BadPointer));
    }
}
