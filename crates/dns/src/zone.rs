//! In-memory zones and a master-file-style textual format.
//!
//! The registry simulator publishes one [`Zone`] snapshot per day per TLD;
//! authoritative servers answer from zones; the OpenINTEL-style scanner
//! seeds its daily sweep from the zone's delegation list — exactly the
//! data flow of the paper's measurement infrastructure.

use crate::name::Name;
use crate::rdata::{RData, RType, Record, SoaData};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of a zone lookup, before message assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Records answering the question directly (owner and type match).
    Answer(Vec<Record>),
    /// The name is an alias; contains the CNAME record. The caller decides
    /// whether to chase it.
    Cname(Record),
    /// The question falls below a zone cut: referral with the cut's NS
    /// records and any in-zone glue.
    Delegation {
        /// NS records at the zone cut.
        ns: Vec<Record>,
        /// A/AAAA glue for in-bailiwick name servers.
        glue: Vec<Record>,
    },
    /// The owner exists but has no records of the queried type.
    NoData,
    /// The owner does not exist in this zone.
    NxDomain,
    /// The question is not within this zone's authority at all.
    OutOfZone,
}

/// An authoritative zone: an origin, a SOA, and records indexed by owner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    origin: Name,
    soa: SoaData,
    soa_ttl: u32,
    /// Owner → records at that owner. BTreeMap keeps snapshots canonical so
    /// that serialized zones are diffable and runs are reproducible.
    records: BTreeMap<Name, Vec<Record>>,
}

/// Error from parsing the textual zone format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub reason: String,
}

impl fmt::Display for ZoneParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ZoneParseError {}

impl Zone {
    /// Create an empty zone.
    pub fn new(origin: Name, soa: SoaData, soa_ttl: u32) -> Self {
        Zone {
            origin,
            soa,
            soa_ttl,
            records: BTreeMap::new(),
        }
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The SOA data.
    pub fn soa(&self) -> &SoaData {
        &self.soa
    }

    /// The SOA as a full record at the apex.
    pub fn soa_record(&self) -> Record {
        Record::new(
            self.origin.clone(),
            self.soa_ttl,
            RData::Soa(self.soa.clone()),
        )
    }

    /// Mutable access to the serial, bumped by the registry on each snapshot.
    pub fn set_serial(&mut self, serial: u32) {
        self.soa.serial = serial;
    }

    /// Add a record. Returns `false` (and does not add) if the owner is
    /// outside the zone.
    pub fn add(&mut self, record: Record) -> bool {
        if !record.name.is_subdomain_of(&self.origin) {
            return false;
        }
        self.records
            .entry(record.name.clone())
            .or_default()
            .push(record);
        true
    }

    /// Remove all records at `owner` (of `rtype`, or all types when `None`).
    /// Returns how many records were removed.
    pub fn remove(&mut self, owner: &Name, rtype: Option<RType>) -> usize {
        match self.records.get_mut(owner) {
            None => 0,
            Some(v) => {
                let before = v.len();
                match rtype {
                    None => v.clear(),
                    Some(t) => v.retain(|r| r.data.rtype() != t),
                }
                let removed = before - v.len();
                if v.is_empty() {
                    self.records.remove(owner);
                }
                removed
            }
        }
    }

    /// Total number of records (excluding the SOA).
    pub fn record_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Iterate all records in canonical owner order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// Owners that have NS records strictly below the apex — i.e. the
    /// delegations. For a TLD zone this is the list of registered domains,
    /// which is exactly what seeds the daily OpenINTEL sweep.
    pub fn delegations(&self) -> impl Iterator<Item = &Name> {
        self.records.iter().filter_map(move |(owner, recs)| {
            (owner != &self.origin && recs.iter().any(|r| r.data.rtype() == RType::Ns))
                .then_some(owner)
        })
    }

    /// NS records at a specific owner.
    pub fn ns_at(&self, owner: &Name) -> Vec<&Record> {
        self.records
            .get(owner)
            .map(|v| v.iter().filter(|r| r.data.rtype() == RType::Ns).collect())
            .unwrap_or_default()
    }

    /// Authoritative lookup implementing RFC 1034 §4.3.2 zone semantics
    /// (without wildcards or DNSSEC).
    pub fn lookup(&self, qname: &Name, qtype: RType) -> Lookup {
        if !qname.is_subdomain_of(&self.origin) {
            return Lookup::OutOfZone;
        }

        // Check for a zone cut between the origin (exclusive) and qname
        // (inclusive): walk enclosing names from just under the apex down,
        // so the highest (closest-to-apex) delegation wins.
        let qlabels: Vec<&[u8]> = qname.labels().collect();
        let depth = qlabels.len() - self.origin.label_count();
        for take in 1..=depth {
            let cut = Name::from_labels(
                qlabels[qlabels.len() - self.origin.label_count() - take..]
                    .iter()
                    .copied(),
            )
            .expect("sub-slice of a valid name");
            if let Some(recs) = self.records.get(&cut) {
                let ns: Vec<Record> = recs
                    .iter()
                    .filter(|r| r.data.rtype() == RType::Ns)
                    .cloned()
                    .collect();
                if !ns.is_empty() && cut != self.origin {
                    // Below a delegation — unless the query is *for* the cut
                    // itself with type DS (parent-side type), or the query
                    // is exactly the cut with type NS (we can answer as the
                    // delegating parent: referral is still the norm).
                    let parent_side = cut == *qname && qtype == RType::Ds;
                    if !parent_side {
                        let glue = self.glue_for(&ns);
                        return Lookup::Delegation { ns, glue };
                    }
                }
            }
        }

        if qname == &self.origin && qtype == RType::Soa {
            return Lookup::Answer(vec![self.soa_record()]);
        }
        match self.records.get(qname) {
            // The apex always exists (it carries the SOA), so a miss there
            // is NoData, not NXDOMAIN.
            None if qname == &self.origin => Lookup::NoData,
            None => Lookup::NxDomain,
            Some(recs) => {
                let matching: Vec<Record> = recs
                    .iter()
                    .filter(|r| r.data.rtype() == qtype)
                    .cloned()
                    .collect();
                if !matching.is_empty() {
                    return Lookup::Answer(matching);
                }
                if let Some(cname) = recs.iter().find(|r| r.data.rtype() == RType::Cname) {
                    return Lookup::Cname(cname.clone());
                }
                Lookup::NoData
            }
        }
    }

    /// Collect A/AAAA glue present in this zone for the given NS targets.
    pub fn glue_for(&self, ns: &[Record]) -> Vec<Record> {
        let mut glue = Vec::new();
        for r in ns {
            if let RData::Ns(target) = &r.data {
                if let Some(recs) = self.records.get(target) {
                    glue.extend(
                        recs.iter()
                            .filter(|g| matches!(g.data.rtype(), RType::A | RType::Aaaa))
                            .cloned(),
                    );
                }
            }
        }
        glue
    }

    /// Serialize to the textual zone format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("$ORIGIN {}\n", self.origin));
        out.push_str(&format!("{}\n", self.soa_record()));
        for r in self.iter() {
            out.push_str(&format!("{r}\n"));
        }
        out
    }

    /// Parse the textual zone format produced by [`Zone::to_text`].
    pub fn from_text(text: &str) -> Result<Zone, ZoneParseError> {
        let err = |line: usize, reason: &str| ZoneParseError {
            line,
            reason: reason.to_owned(),
        };
        let mut origin: Option<Name> = None;
        let mut zone: Option<Zone> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split(';').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("$ORIGIN") {
                origin = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| err(lineno, "bad $ORIGIN name"))?,
                );
                continue;
            }
            let record = parse_record_line(line).map_err(|reason| err(lineno, &reason))?;
            match (&mut zone, &record.data) {
                (None, RData::Soa(soa)) => {
                    let origin = origin.clone().unwrap_or_else(|| record.name.clone());
                    if record.name != origin {
                        return Err(err(lineno, "SOA owner differs from $ORIGIN"));
                    }
                    zone = Some(Zone::new(origin, soa.clone(), record.ttl));
                }
                (None, _) => return Err(err(lineno, "first record must be SOA")),
                (Some(z), _) => {
                    if !z.add(record) {
                        return Err(err(lineno, "record out of zone"));
                    }
                }
            }
        }
        zone.ok_or_else(|| err(0, "empty zone (no SOA)"))
    }
}

/// Parse one zone-file line in the format emitted by `Record`'s `Display`.
fn parse_record_line(line: &str) -> Result<Record, String> {
    let mut tok = line.split_whitespace();
    let name: Name = tok
        .next()
        .ok_or("missing owner")?
        .parse()
        .map_err(|e| format!("bad owner: {e}"))?;
    let ttl: u32 = tok
        .next()
        .ok_or("missing ttl")?
        .parse()
        .map_err(|_| "bad ttl".to_owned())?;
    let class = tok.next().ok_or("missing class")?;
    if !class.eq_ignore_ascii_case("IN") {
        return Err(format!("unsupported class {class}"));
    }
    let rtype =
        RType::from_mnemonic(tok.next().ok_or("missing type")?).ok_or("unknown record type")?;
    let rest: Vec<&str> = tok.collect();
    let p = |s: &str| -> Result<Name, String> { s.parse().map_err(|e| format!("bad name: {e}")) };

    let data = match rtype {
        RType::A => RData::A(
            rest.first()
                .ok_or("missing address")?
                .parse()
                .map_err(|_| "bad IPv4 address".to_owned())?,
        ),
        RType::Aaaa => RData::Aaaa(
            rest.first()
                .ok_or("missing address")?
                .parse()
                .map_err(|_| "bad IPv6 address".to_owned())?,
        ),
        RType::Ns => RData::Ns(p(rest.first().ok_or("missing NS target")?)?),
        RType::Cname => RData::Cname(p(rest.first().ok_or("missing CNAME target")?)?),
        RType::Mx => {
            if rest.len() < 2 {
                return Err("MX needs preference and target".into());
            }
            RData::Mx(
                rest[0]
                    .parse()
                    .map_err(|_| "bad MX preference".to_owned())?,
                p(rest[1])?,
            )
        }
        RType::Soa => {
            if rest.len() < 7 {
                return Err("SOA needs 7 fields".into());
            }
            let nums: Result<Vec<u32>, _> = rest[2..7].iter().map(|s| s.parse::<u32>()).collect();
            let nums = nums.map_err(|_| "bad SOA numeric field".to_owned())?;
            RData::Soa(SoaData {
                mname: p(rest[0])?,
                rname: p(rest[1])?,
                serial: nums[0],
                refresh: nums[1],
                retry: nums[2],
                expire: nums[3],
                minimum: nums[4],
            })
        }
        RType::Txt => {
            let joined = rest.join(" ");
            let mut strings = Vec::new();
            let mut cur = String::new();
            let mut in_quotes = false;
            for c in joined.chars() {
                match (c, in_quotes) {
                    ('"', false) => in_quotes = true,
                    ('"', true) => {
                        in_quotes = false;
                        strings.push(std::mem::take(&mut cur).into_bytes());
                    }
                    (_, true) => cur.push(c),
                    (_, false) => {}
                }
            }
            if in_quotes {
                return Err("unterminated TXT string".into());
            }
            RData::Txt(strings)
        }
        RType::Ds => {
            if rest.len() < 4 {
                return Err("DS needs 4 fields".into());
            }
            let digest_hex = rest[3];
            if !digest_hex.len().is_multiple_of(2) {
                return Err("odd-length DS digest".into());
            }
            let digest: Result<Vec<u8>, _> = (0..digest_hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&digest_hex[i..i + 2], 16))
                .collect();
            RData::Ds(
                rest[0].parse().map_err(|_| "bad DS key tag".to_owned())?,
                rest[1].parse().map_err(|_| "bad DS algorithm".to_owned())?,
                rest[2]
                    .parse()
                    .map_err(|_| "bad DS digest type".to_owned())?,
                digest.map_err(|_| "bad DS digest hex".to_owned())?,
            )
        }
    };
    Ok(Record { name, ttl, data })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn tld_zone() -> Zone {
        let soa = SoaData {
            mname: name("a.dns.ripn.net"),
            rname: name("hostmaster.ripn.net"),
            serial: 1,
            refresh: 86400,
            retry: 14400,
            expire: 2_592_000,
            minimum: 3600,
        };
        let mut z = Zone::new(name("ru"), soa, 86400);
        z.add(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns1.example.ru")),
        ));
        z.add(Record::new(
            name("example.ru"),
            3600,
            RData::Ns(name("ns2.hoster.com")),
        ));
        z.add(Record::new(
            name("ns1.example.ru"),
            3600,
            RData::A("198.51.100.53".parse().unwrap()),
        ));
        z.add(Record::new(
            name("other.ru"),
            3600,
            RData::Ns(name("dns.other.ru")),
        ));
        z
    }

    #[test]
    fn add_rejects_out_of_zone() {
        let mut z = tld_zone();
        assert!(!z.add(Record::new(
            name("example.com"),
            60,
            RData::A("192.0.2.1".parse().unwrap())
        )));
        assert!(z.add(Record::new(
            name("deep.sub.example.ru"),
            60,
            RData::A("192.0.2.1".parse().unwrap())
        )));
    }

    #[test]
    fn delegations_enumerated() {
        let z = tld_zone();
        let delegs: Vec<String> = z.delegations().map(|n| n.to_string()).collect();
        assert_eq!(delegs, vec!["example.ru.", "other.ru."]);
    }

    #[test]
    fn lookup_referral_with_glue() {
        let z = tld_zone();
        match z.lookup(&name("www.example.ru"), RType::A) {
            Lookup::Delegation { ns, glue } => {
                assert_eq!(ns.len(), 2);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].name, name("ns1.example.ru"));
            }
            other => panic!("expected delegation, got {other:?}"),
        }
        // Querying the delegated name itself also refers.
        assert!(matches!(
            z.lookup(&name("example.ru"), RType::A),
            Lookup::Delegation { .. }
        ));
    }

    #[test]
    fn lookup_ds_is_parent_side() {
        let mut z = tld_zone();
        z.add(Record::new(
            name("example.ru"),
            3600,
            RData::Ds(1, 8, 2, vec![0xAA]),
        ));
        match z.lookup(&name("example.ru"), RType::Ds) {
            Lookup::Answer(recs) => assert_eq!(recs.len(), 1),
            other => panic!("expected DS answer, got {other:?}"),
        }
    }

    #[test]
    fn lookup_nxdomain_nodata_outofzone() {
        let z = tld_zone();
        assert_eq!(z.lookup(&name("missing.ru"), RType::A), Lookup::NxDomain);
        assert_eq!(z.lookup(&name("ru"), RType::A), Lookup::NoData);
        assert_eq!(z.lookup(&name("example.com"), RType::A), Lookup::OutOfZone);
    }

    #[test]
    fn lookup_apex_soa_and_under_delegation_glue_name() {
        let z = tld_zone();
        // Glue owner is under the example.ru cut, so an A query for it refers.
        assert!(matches!(
            z.lookup(&name("ns1.example.ru"), RType::A),
            Lookup::Delegation { .. }
        ));
    }

    #[test]
    fn cname_lookup() {
        let soa = tld_zone().soa().clone();
        let mut z = Zone::new(name("example.ru"), soa, 3600);
        z.add(Record::new(
            name("www.example.ru"),
            60,
            RData::Cname(name("example.ru")),
        ));
        z.add(Record::new(
            name("example.ru"),
            60,
            RData::A("192.0.2.2".parse().unwrap()),
        ));
        match z.lookup(&name("www.example.ru"), RType::A) {
            Lookup::Cname(r) => assert_eq!(r.name, name("www.example.ru")),
            other => panic!("expected CNAME, got {other:?}"),
        }
        // Direct CNAME query answers the CNAME itself.
        match z.lookup(&name("www.example.ru"), RType::Cname) {
            Lookup::Answer(recs) => assert_eq!(recs.len(), 1),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn remove_records() {
        let mut z = tld_zone();
        assert_eq!(z.remove(&name("example.ru"), Some(RType::Ns)), 2);
        assert_eq!(z.lookup(&name("example.ru"), RType::Ns), Lookup::NxDomain);
        assert_eq!(z.remove(&name("nothing.ru"), None), 0);
    }

    #[test]
    fn text_roundtrip() {
        let z = tld_zone();
        let text = z.to_text();
        let back = Zone::from_text(&text).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn text_roundtrip_all_rdata() {
        let soa = tld_zone().soa().clone();
        let mut z = Zone::new(name("example.ru"), soa, 3600);
        z.add(Record::new(
            name("example.ru"),
            60,
            RData::A("192.0.2.2".parse().unwrap()),
        ));
        z.add(Record::new(
            name("example.ru"),
            60,
            RData::Aaaa("2001:db8::2".parse().unwrap()),
        ));
        z.add(Record::new(
            name("example.ru"),
            60,
            RData::Mx(10, name("mx.example.ru")),
        ));
        z.add(Record::new(
            name("example.ru"),
            60,
            RData::Txt(vec![b"v=spf1 -all".to_vec()]),
        ));
        z.add(Record::new(
            name("example.ru"),
            60,
            RData::Ds(7, 8, 2, vec![0xDE, 0xAD]),
        ));
        z.add(Record::new(
            name("www.example.ru"),
            60,
            RData::Cname(name("example.ru")),
        ));
        let back = Zone::from_text(&z.to_text()).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn parse_errors() {
        assert!(Zone::from_text("").is_err());
        assert!(Zone::from_text("$ORIGIN ru.\nexample.ru. 60 IN A 192.0.2.1\n").is_err());
        let bad = "$ORIGIN ru.\nru. 86400 IN SOA a. b. 1 2 3 4 5\nexample.ru. x IN A 192.0.2.1\n";
        let e = Zone::from_text(bad).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n; a comment\n$ORIGIN ru.\nru. 86400 IN SOA a. b. 1 2 3 4 5 ; inline\n\nexample.ru. 60 IN NS ns.example.ru. ; deleg\n";
        let z = Zone::from_text(text).unwrap();
        assert_eq!(z.record_count(), 1);
    }
}

/// The delegation-level difference between two zone snapshots — how
/// registries publish daily change sets, and how a measurement pipeline
/// can separate newly registered names from lapsed ones without WHOIS.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneDiff {
    /// Delegations present in `new` but not `old`.
    pub added: Vec<Name>,
    /// Delegations present in `old` but not `new`.
    pub removed: Vec<Name>,
    /// Delegations whose NS RRset changed.
    pub changed: Vec<Name>,
}

impl ZoneDiff {
    /// Compute the delegation diff between two snapshots of the same zone.
    pub fn between(old: &Zone, new: &Zone) -> ZoneDiff {
        let ns_sets = |z: &Zone| -> std::collections::BTreeMap<Name, Vec<String>> {
            z.delegations()
                .map(|owner| {
                    let mut targets: Vec<String> =
                        z.ns_at(owner).iter().map(|r| r.to_string()).collect();
                    targets.sort();
                    (owner.clone(), targets)
                })
                .collect()
        };
        let o = ns_sets(old);
        let n = ns_sets(new);
        let mut diff = ZoneDiff::default();
        for (owner, set) in &n {
            match o.get(owner) {
                None => diff.added.push(owner.clone()),
                Some(old_set) if old_set != set => diff.changed.push(owner.clone()),
                Some(_) => {}
            }
        }
        for owner in o.keys() {
            if !n.contains_key(owner) {
                diff.removed.push(owner.clone());
            }
        }
        diff
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }
}

#[cfg(test)]
mod diff_tests {
    use super::*;
    use crate::rdata::RData;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn soa() -> SoaData {
        SoaData {
            mname: name("m.invalid"),
            rname: name("r.invalid"),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 60,
        }
    }

    fn zone(delegs: &[(&str, &str)]) -> Zone {
        let mut z = Zone::new(name("ru"), soa(), 3600);
        for (owner, target) in delegs {
            z.add(Record::new(name(owner), 3600, RData::Ns(name(target))));
        }
        z
    }

    #[test]
    fn diff_detects_all_change_kinds() {
        let old = zone(&[
            ("a.ru", "ns1.x.ru"),
            ("b.ru", "ns1.x.ru"),
            ("c.ru", "ns1.x.ru"),
        ]);
        let new = zone(&[
            ("a.ru", "ns1.x.ru"),
            ("b.ru", "ns2.y.com"),
            ("d.ru", "ns1.x.ru"),
        ]);
        let diff = ZoneDiff::between(&old, &new);
        assert_eq!(diff.added, vec![name("d.ru")]);
        assert_eq!(diff.removed, vec![name("c.ru")]);
        assert_eq!(diff.changed, vec![name("b.ru")]);
        assert!(!diff.is_empty());
    }

    #[test]
    fn identical_zones_diff_empty() {
        let a = zone(&[("a.ru", "ns1.x.ru")]);
        let b = zone(&[("a.ru", "ns1.x.ru")]);
        assert!(ZoneDiff::between(&a, &b).is_empty());
    }
}
