//! Resource records and RDATA.

use crate::name::Name;
use crate::wire::{Decoder, Encoder, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// The only class we implement: IN (Internet).
pub const CLASS_IN: u16 = 1;

/// Resource-record types we understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RType {
    /// IPv4 address (RFC 1035).
    A,
    /// Authoritative name server (RFC 1035).
    Ns,
    /// Canonical name alias (RFC 1035).
    Cname,
    /// Start of authority (RFC 1035).
    Soa,
    /// Mail exchanger (RFC 1035).
    Mx,
    /// Free-form text (RFC 1035).
    Txt,
    /// IPv6 address (RFC 3596).
    Aaaa,
    /// Delegation signer (RFC 4034) — present so that zones can model
    /// DNSSEC delegations; we do not validate signatures.
    Ds,
}

impl RType {
    /// The IANA type code.
    pub const fn code(self) -> u16 {
        match self {
            RType::A => 1,
            RType::Ns => 2,
            RType::Cname => 5,
            RType::Soa => 6,
            RType::Mx => 15,
            RType::Txt => 16,
            RType::Aaaa => 28,
            RType::Ds => 43,
        }
    }

    /// Parse an IANA type code.
    pub const fn from_code(code: u16) -> Option<RType> {
        Some(match code {
            1 => RType::A,
            2 => RType::Ns,
            5 => RType::Cname,
            6 => RType::Soa,
            15 => RType::Mx,
            16 => RType::Txt,
            28 => RType::Aaaa,
            43 => RType::Ds,
            _ => return None,
        })
    }

    /// Mnemonic, as used in zone files.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            RType::A => "A",
            RType::Ns => "NS",
            RType::Cname => "CNAME",
            RType::Soa => "SOA",
            RType::Mx => "MX",
            RType::Txt => "TXT",
            RType::Aaaa => "AAAA",
            RType::Ds => "DS",
        }
    }

    /// Parse a zone-file mnemonic (case-insensitive).
    pub fn from_mnemonic(s: &str) -> Option<RType> {
        Some(match s.to_ascii_uppercase().as_str() {
            "A" => RType::A,
            "NS" => RType::Ns,
            "CNAME" => RType::Cname,
            "SOA" => RType::Soa,
            "MX" => RType::Mx,
            "TXT" => RType::Txt,
            "AAAA" => RType::Aaaa,
            "DS" => RType::Ds,
            _ => return None,
        })
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// SOA RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SoaData {
    /// Primary name server.
    pub mname: Name,
    /// Responsible mailbox (encoded as a name).
    pub rname: Name,
    /// Zone serial number; the registry bumps this on every daily snapshot.
    pub serial: u32,
    /// Refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expiry (seconds).
    pub expire: u32,
    /// Negative-caching TTL (seconds).
    pub minimum: u32,
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name-server target.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Start of authority.
    Soa(SoaData),
    /// Mail exchanger: preference + target.
    Mx(u16, Name),
    /// Text strings (each at most 255 bytes on the wire).
    Txt(Vec<Vec<u8>>),
    /// Delegation signer: key tag, algorithm, digest type, digest.
    Ds(u16, u8, u8, Vec<u8>),
}

impl RData {
    /// The record type of this RDATA.
    pub const fn rtype(&self) -> RType {
        match self {
            RData::A(_) => RType::A,
            RData::Aaaa(_) => RType::Aaaa,
            RData::Ns(_) => RType::Ns,
            RData::Cname(_) => RType::Cname,
            RData::Soa(_) => RType::Soa,
            RData::Mx(_, _) => RType::Mx,
            RData::Txt(_) => RType::Txt,
            RData::Ds(_, _, _, _) => RType::Ds,
        }
    }

    /// Encode this RDATA (without the RDLENGTH prefix) into `enc`.
    ///
    /// Names inside RDATA are encoded with compression for NS/CNAME/SOA/MX,
    /// matching common server behaviour.
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            RData::A(ip) => enc.put_slice(&ip.octets()),
            RData::Aaaa(ip) => enc.put_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) => n.encode(enc),
            RData::Soa(soa) => {
                soa.mname.encode(enc);
                soa.rname.encode(enc);
                enc.put_u32(soa.serial);
                enc.put_u32(soa.refresh);
                enc.put_u32(soa.retry);
                enc.put_u32(soa.expire);
                enc.put_u32(soa.minimum);
            }
            RData::Mx(pref, n) => {
                enc.put_u16(*pref);
                n.encode(enc);
            }
            RData::Txt(strings) => {
                for s in strings {
                    // Truncation to 255 is the caller's responsibility; we
                    // clamp defensively rather than corrupt the wire format.
                    let len = s.len().min(255);
                    enc.put_u8(len as u8);
                    enc.put_slice(&s[..len]);
                }
            }
            RData::Ds(tag, alg, dt, digest) => {
                enc.put_u16(*tag);
                enc.put_u8(*alg);
                enc.put_u8(*dt);
                enc.put_slice(digest);
            }
        }
    }

    /// Decode RDATA of type `rtype` occupying exactly `rdlen` bytes at the
    /// decoder's cursor.
    pub fn decode(dec: &mut Decoder<'_>, rtype: RType, rdlen: usize) -> Result<Self, WireError> {
        let end = dec.position() + rdlen;
        if end > dec.message().len() {
            return Err(WireError::Truncated);
        }
        let data = match rtype {
            RType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdataLength);
                }
                let o = dec.get_slice(4)?;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdataLength);
                }
                let o = dec.get_slice(16)?;
                let mut a = [0u8; 16];
                a.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(a))
            }
            RType::Ns => RData::Ns(Name::decode(dec)?),
            RType::Cname => RData::Cname(Name::decode(dec)?),
            RType::Soa => RData::Soa(SoaData {
                mname: Name::decode(dec)?,
                rname: Name::decode(dec)?,
                serial: dec.get_u32()?,
                refresh: dec.get_u32()?,
                retry: dec.get_u32()?,
                expire: dec.get_u32()?,
                minimum: dec.get_u32()?,
            }),
            RType::Mx => RData::Mx(dec.get_u16()?, Name::decode(dec)?),
            RType::Txt => {
                let mut strings = Vec::new();
                while dec.position() < end {
                    let len = dec.get_u8()? as usize;
                    if dec.position() + len > end {
                        return Err(WireError::BadRdataLength);
                    }
                    strings.push(dec.get_slice(len)?.to_vec());
                }
                RData::Txt(strings)
            }
            RType::Ds => {
                if rdlen < 4 {
                    return Err(WireError::BadRdataLength);
                }
                let tag = dec.get_u16()?;
                let alg = dec.get_u8()?;
                let dt = dec.get_u8()?;
                let digest = dec.get_slice(rdlen - 4)?.to_vec();
                RData::Ds(tag, alg, dt, digest)
            }
        };
        if dec.position() != end {
            return Err(WireError::BadRdataLength);
        }
        Ok(data)
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed record data (class is always IN).
    pub data: RData,
}

impl Record {
    /// Convenience constructor.
    pub fn new(name: Name, ttl: u32, data: RData) -> Self {
        Record { name, ttl, data }
    }

    /// Encode the full record (owner, type, class, TTL, RDLENGTH, RDATA).
    pub fn encode(&self, enc: &mut Encoder) {
        self.name.encode(enc);
        enc.put_u16(self.data.rtype().code());
        enc.put_u16(CLASS_IN);
        enc.put_u32(self.ttl);
        let len_at = enc.position();
        enc.put_u16(0);
        let start = enc.position();
        self.data.encode(enc);
        let rdlen = enc.position() - start;
        enc.patch_u16(len_at, rdlen as u16);
    }

    /// Decode one record at the decoder's cursor.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let name = Name::decode(dec)?;
        let code = dec.get_u16()?;
        let rtype = RType::from_code(code).ok_or(WireError::UnknownType(code))?;
        let _class = dec.get_u16()?;
        let ttl = dec.get_u32()?;
        let rdlen = dec.get_u16()? as usize;
        let data = RData::decode(dec, rtype, rdlen)?;
        Ok(Record { name, ttl, data })
    }
}

impl fmt::Display for Record {
    /// Zone-file presentation, e.g. `example.ru. 3600 IN NS ns1.host.ru.`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} IN {} ", self.name, self.ttl, self.data.rtype())?;
        match &self.data {
            RData::A(ip) => write!(f, "{ip}"),
            RData::Aaaa(ip) => write!(f, "{ip}"),
            RData::Ns(n) | RData::Cname(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Mx(p, n) => write!(f, "{p} {n}"),
            RData::Txt(strings) => {
                let mut first = true;
                for s in strings {
                    if !first {
                        write!(f, " ")?;
                    }
                    first = false;
                    write!(f, "\"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Ds(tag, alg, dt, digest) => {
                write!(f, "{tag} {alg} {dt} ")?;
                for b in digest {
                    write!(f, "{b:02X}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: &Record) -> Record {
        let mut e = Encoder::new();
        r.encode(&mut e);
        let buf = e.finish().unwrap();
        let mut d = Decoder::new(&buf);
        let got = Record::decode(&mut d).unwrap();
        assert_eq!(d.remaining(), 0, "record left trailing bytes");
        got
    }

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip_all_types() {
        let records = [
            Record::new(
                name("example.ru"),
                300,
                RData::A("192.0.2.1".parse().unwrap()),
            ),
            Record::new(
                name("example.ru"),
                300,
                RData::Aaaa("2001:db8::1".parse().unwrap()),
            ),
            Record::new(name("example.ru"), 3600, RData::Ns(name("ns1.hoster.ru"))),
            Record::new(name("www.example.ru"), 60, RData::Cname(name("example.ru"))),
            Record::new(
                name("ru"),
                86400,
                RData::Soa(SoaData {
                    mname: name("a.dns.ripn.net"),
                    rname: name("hostmaster.ripn.net"),
                    serial: 4_049_000,
                    refresh: 86400,
                    retry: 14400,
                    expire: 2_592_000,
                    minimum: 3600,
                }),
            ),
            Record::new(
                name("example.ru"),
                300,
                RData::Mx(10, name("mx.example.ru")),
            ),
            Record::new(
                name("example.ru"),
                300,
                RData::Txt(vec![b"v=spf1 -all".to_vec(), b"second".to_vec()]),
            ),
            Record::new(
                name("example.ru"),
                3600,
                RData::Ds(12345, 8, 2, vec![0xAB; 32]),
            ),
        ];
        for r in &records {
            assert_eq!(&roundtrip(r), r, "roundtrip failed for {r}");
        }
    }

    #[test]
    fn rdata_length_validation() {
        // A record claiming 5 bytes of A RDATA.
        let mut e = Encoder::new();
        name("x.ru").encode(&mut e);
        e.put_u16(RType::A.code());
        e.put_u16(CLASS_IN);
        e.put_u32(60);
        e.put_u16(5);
        e.put_slice(&[1, 2, 3, 4, 5]);
        let buf = e.finish().unwrap();
        let mut d = Decoder::new(&buf);
        assert_eq!(Record::decode(&mut d), Err(WireError::BadRdataLength));
    }

    #[test]
    fn unknown_type_is_error() {
        let mut e = Encoder::new();
        name("x.ru").encode(&mut e);
        e.put_u16(99);
        e.put_u16(CLASS_IN);
        e.put_u32(60);
        e.put_u16(0);
        let buf = e.finish().unwrap();
        let mut d = Decoder::new(&buf);
        assert_eq!(Record::decode(&mut d), Err(WireError::UnknownType(99)));
    }

    #[test]
    fn txt_inner_length_checked() {
        // TXT rdlen 3 but inner string claims 10 bytes.
        let mut e = Encoder::new();
        name("x.ru").encode(&mut e);
        e.put_u16(RType::Txt.code());
        e.put_u16(CLASS_IN);
        e.put_u32(60);
        e.put_u16(3);
        e.put_slice(&[10, b'a', b'b']);
        let buf = e.finish().unwrap();
        let mut d = Decoder::new(&buf);
        assert_eq!(Record::decode(&mut d), Err(WireError::BadRdataLength));
    }

    #[test]
    fn type_code_roundtrip() {
        for t in [
            RType::A,
            RType::Ns,
            RType::Cname,
            RType::Soa,
            RType::Mx,
            RType::Txt,
            RType::Aaaa,
            RType::Ds,
        ] {
            assert_eq!(RType::from_code(t.code()), Some(t));
            assert_eq!(RType::from_mnemonic(t.mnemonic()), Some(t));
        }
        assert_eq!(RType::from_code(0), None);
        assert_eq!(RType::from_mnemonic("PTR"), None);
    }

    #[test]
    fn display_forms() {
        let r = Record::new(
            name("example.ru"),
            300,
            RData::Mx(10, name("mx.example.ru")),
        );
        assert_eq!(r.to_string(), "example.ru. 300 IN MX 10 mx.example.ru.");
        let r = Record::new(
            name("example.ru"),
            60,
            RData::A("192.0.2.7".parse().unwrap()),
        );
        assert_eq!(r.to_string(), "example.ru. 60 IN A 192.0.2.7");
    }

    #[test]
    fn names_in_rdata_compress_against_owner() {
        let r = Record::new(name("example.ru"), 3600, RData::Ns(name("ns1.example.ru")));
        let mut e = Encoder::new();
        r.encode(&mut e);
        let buf = e.finish().unwrap();
        // ns1.example.ru should encode as "ns1" + pointer: 1+3+2 = 6 bytes.
        // Full record: name(12) + type(2)+class(2)+ttl(4)+rdlen(2) + 6.
        assert_eq!(buf.len(), 12 + 10 + 6);
        let mut d = Decoder::new(&buf);
        assert_eq!(Record::decode(&mut d).unwrap(), r);
    }
}
