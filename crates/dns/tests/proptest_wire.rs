//! Property tests: wire round-trips and decoder robustness.

use proptest::prelude::*;
use ruwhere_dns::{Flags, Message, Name, Opcode, Question, RData, RType, Rcode, Record, SoaData};
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    // DNS labels: start/end alphanumeric, middle may contain hyphens.
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..5)
        .prop_map(|labels| Name::from_labels(labels).expect("generated labels are valid"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), arb_name()).prop_map(|(p, n)| RData::Mx(p, n)),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..3)
            .prop_map(RData::Txt),
        (
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..40)
        )
            .prop_map(|(t, a, d, dg)| RData::Ds(t, a, d, dg)),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, data)| Record { name, ttl, data })
}

fn arb_flags() -> impl Strategy<Value = Flags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
    )
        .prop_map(|(qr, aa, tc, rd, ra, rc)| Flags {
            qr,
            opcode: Opcode::Query,
            aa,
            tc,
            rd,
            ra,
            rcode: match rc {
                0 => Rcode::NoError,
                1 => Rcode::FormErr,
                2 => Rcode::ServFail,
                3 => Rcode::NxDomain,
                4 => Rcode::NotImp,
                5 => Rcode::Refused,
                c => Rcode::Other(c),
            },
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_flags(),
        proptest::collection::vec(
            (
                arb_name(),
                prop_oneof![Just(RType::A), Just(RType::Ns), Just(RType::Aaaa)],
            ),
            0..2,
        ),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(
            |(id, flags, qs, answers, authorities, additionals)| Message {
                id,
                flags,
                questions: qs.into_iter().map(|(n, t)| Question::new(n, t)).collect(),
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let buf = msg.encode().unwrap();
        let back = Message::decode(&buf).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Must return an error or a value, never panic.
        let _ = Message::decode(&data);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_message(
        msg in arb_message(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let mut buf = msg.encode().unwrap();
        if buf.is_empty() { return Ok(()); }
        for (idx, val) in flips {
            let i = idx.index(buf.len());
            buf[i] ^= val;
        }
        let _ = Message::decode(&buf);
    }

    #[test]
    fn name_roundtrip_via_string(name in arb_name()) {
        let s = name.to_string();
        let back: Name = s.parse().unwrap();
        prop_assert_eq!(back, name);
    }
}
