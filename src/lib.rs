//! # ruwhere
//!
//! A full reproduction of *"Where .ru? Assessing the Impact of Conflict on
//! Russian Domain Infrastructure"* (Jonker et al., IMC 2022) as a Rust
//! workspace: the paper's analysis pipeline plus every acquisition system
//! it depends on, rebuilt over a deterministic simulated Internet.
//!
//! This umbrella crate re-exports the workspace so downstream users can
//! depend on one crate:
//!
//! ```
//! use ruwhere::prelude::*;
//!
//! // Build a tiny world, sweep it once, classify NS composition.
//! let mut world = World::new(WorldConfig::tiny());
//! let mut scanner = OpenIntelScanner::new(&world);
//! let sweep = scanner.sweep(&mut world);
//! let mut fig1 = CompositionSeries::new(InfraKind::NameServers);
//! fig1.observe(&sweep);
//! let counts = fig1.at(world.today()).unwrap();
//! assert!(counts.total() > 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and `examples/` for runnable entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ruwhere_authdns as authdns;
pub use ruwhere_core as analysis;
pub use ruwhere_ct as ct;
pub use ruwhere_dns as dns;
pub use ruwhere_geo as geo;
pub use ruwhere_netsim as netsim;
pub use ruwhere_obs as obs;
pub use ruwhere_registry as registry;
pub use ruwhere_scan as scan;
pub use ruwhere_store as store;
pub use ruwhere_types as types;
pub use ruwhere_world as world;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use ruwhere_core::{
        figures, run_study, AnalysisEngine, AsnShareSeries, CaIssuanceAnalysis, Composition,
        CompositionSeries, FrameObserver, InfraKind, MovementReport, RevocationAnalysis,
        RussianCaAnalysis, Series, StudyConfig, StudyResults, Table, TldDependencySeries,
        TldUsageSeries,
    };
    pub use ruwhere_scan::{
        CertDataset, DailySweep, IpScanner, MatchRule, OpenIntelScanner, ScanError, Scanner,
        SweepMetrics, SweepOptions,
    };
    pub use ruwhere_store::{Interner, SweepFrame};
    pub use ruwhere_types::{
        Asn, Country, Date, DomainName, Period, SeedTree, CONFLICT_START, SANCTIONS_EFFECT,
        STUDY_END, STUDY_START,
    };
    pub use ruwhere_world::{ConflictEvent, FaultTarget, InfraFault, World, WorldConfig};
}
