//! Offline shim for the subset of the `bytes` crate this workspace uses.
//!
//! `ruwhere-dns` uses `BytesMut` + `BufMut` purely as a growable
//! big-endian output buffer; no zero-copy splitting or refcounted views
//! are needed, so `Vec<u8>` is an adequate backing store.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer, append-oriented.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Big-endian append operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_big_endian() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_slice(&[8]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(b.len(), 8);
        b[0..2].copy_from_slice(&[9, 9]);
        assert_eq!(&b[..3], &[9, 9, 3]);
    }
}
