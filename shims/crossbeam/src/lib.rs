//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with crossbeam's closure signature
//! (`spawn` passes the scope back into the closure), implemented over
//! `std::thread::scope` (stable since 1.63).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle; `spawn` re-borrows it so spawned closures can
    /// themselves spawn (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; join to collect its result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope,
        /// matching crossbeam (callers commonly ignore it with `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reborrow = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&reborrow)),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. crossbeam returns `Err` if a *detached* (never-joined)
    /// child panicked; with std's scope an unjoined panic propagates as a
    /// panic instead, so the `Ok` arm is the only one constructed here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let xs = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let a = s.spawn(|_| xs.iter().sum::<i32>());
            let b = s.spawn(|_| 10);
            a.join().expect("a") + b.join().expect("b")
        })
        .expect("scope");
        assert_eq!(sum, 16);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = crate::thread::scope(|s| {
            let outer = s.spawn(|inner_scope| {
                let h = inner_scope.spawn(|_| 21);
                h.join().expect("inner") * 2
            });
            outer.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
