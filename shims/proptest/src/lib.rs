//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates-registry access, so this crate
//! reimplements the proptest API surface the workspace's property tests
//! rely on: the `proptest!`/`prop_compose!`/`prop_oneof!` macros, the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, `any::<T>()`,
//! range and tuple and `Vec` strategies, `collection::vec`,
//! `string::string_regex` (a small regex *generator*), and
//! `sample::Index`.
//!
//! Differences from real proptest, deliberate:
//! - **No shrinking.** A failing case panics with its generated inputs
//!   via the normal assert message; it is not minimized.
//! - **Deterministic seeding.** Cases derive from a hash of the test's
//!   module path + name + case number, so failures reproduce exactly on
//!   re-run (there is no `proptest-regressions` persistence).
//! - `prop_assert*` are plain `assert*` (they panic instead of returning
//!   an error value); `prop_assume!` rejects the case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// Why a test case ended without a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
}

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps heavier simulation
        // tests fast while still exercising a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic machinery behind the `proptest!` macro.
pub mod test_runner {
    use super::*;

    /// RNG for one case of one test: pure function of test name + case.
    pub fn case_rng(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= case as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        StdRng::seed_from_u64(h)
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.gen_value(rng)).gen_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Integer types usable in open-ended (`lo..`) range strategies.
pub trait UpperBounded: Copy {
    /// The type's maximum value.
    const MAX_VALUE: Self;
}

macro_rules! impl_upper_bounded {
    ($($t:ty),*) => {$(
        impl UpperBounded for $t {
            const MAX_VALUE: $t = <$t>::MAX;
        }
    )*};
}
impl_upper_bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UpperBounded> Strategy for core::ops::RangeFrom<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.start..=T::MAX_VALUE)
    }
}

/// A string literal is a regex generator (proptest's signature feature).
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e:?}"))
            .gen_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);

/// A `Vec` of strategies generates element-wise (used to build a record
/// per index, then collect).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.gen_value(rng)).collect()
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (full value range for primitives).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy generating any value of a primitive type.
pub struct AnyPrim<T>(core::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyPrim<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.random()
    }
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy generating a random `[u8; N]`.
pub struct AnyByteArray<const N: usize>;

impl<const N: usize> Strategy for AnyByteArray<N> {
    type Value = [u8; N];
    fn gen_value(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.random();
        }
        out
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    type Strategy = AnyByteArray<N>;
    fn arbitrary() -> Self::Strategy {
        AnyByteArray
    }
}

/// Strategy combinators that need a home for macro expansion.
pub mod strategy {
    use super::*;

    /// One boxed arm of a [`Union`].
    pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Box a strategy into a union arm (used by `prop_oneof!`).
    pub fn union_arm<S: Strategy + 'static>(s: S) -> UnionArm<S::Value> {
        Box::new(move |rng| s.gen_value(rng))
    }

    /// Uniform choice between heterogeneous strategies with one value type.
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// Union over the given arms (must be non-empty).
        pub fn new(arms: Vec<UnionArm<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let i = rng.random_range(0..self.arms.len());
            (self.arms[i])(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::*;

    /// An index into a not-yet-known-length collection: draws a raw
    /// value up front, maps into `0..len` on demand.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Map into `0..len` (panics if `len == 0`, like proptest).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy generating [`Index`].
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;
        fn gen_value(&self, rng: &mut TestRng) -> Index {
            Index(rng.random())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyIndex;
        fn arbitrary() -> Self::Strategy {
            AnyIndex
        }
    }
}

/// String strategies: a small regex *generator*.
pub mod string {
    use super::*;

    /// Regex pattern rejected by the generator's parser.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    #[derive(Debug, Clone)]
    enum Node {
        Lit(char),
        /// Inclusive char ranges, e.g. `[a-zа-я0-9-]`.
        Class(Vec<(char, char)>),
        /// `\PC`: any non-control character (printable ASCII + a spread
        /// of non-ASCII codepoints).
        NotControl,
        Group(Vec<Quantified>),
    }

    #[derive(Debug, Clone)]
    struct Quantified {
        node: Node,
        min: u32,
        max: u32,
    }

    /// Strategy generating strings matching a regex subset: literals,
    /// char classes with ranges, groups, `?`, `*`, `+`, `{n}`, `{m,n}`,
    /// and `\PC`. Unbounded quantifiers are capped at 8 repeats.
    pub struct RegexStrategy {
        seq: Vec<Quantified>,
    }

    /// Compile `pattern` into a generator strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let mut chars: Vec<char> = pattern.chars().collect();
        chars.reverse(); // pop() from the front
        let seq = parse_seq(&mut chars, false)?;
        if !chars.is_empty() {
            return Err(Error(format!("trailing input in regex {pattern:?}")));
        }
        Ok(RegexStrategy { seq })
    }

    const UNBOUNDED_CAP: u32 = 8;

    fn parse_seq(input: &mut Vec<char>, in_group: bool) -> Result<Vec<Quantified>, Error> {
        let mut out = Vec::new();
        while let Some(&c) = input.last() {
            if c == ')' {
                if in_group {
                    return Ok(out);
                }
                return Err(Error("unmatched ')'".into()));
            }
            input.pop();
            let node = match c {
                '(' => {
                    let inner = parse_seq(input, true)?;
                    if input.pop() != Some(')') {
                        return Err(Error("unclosed group".into()));
                    }
                    Node::Group(inner)
                }
                '[' => Node::Class(parse_class(input)?),
                '\\' => match input.pop() {
                    Some('P') => {
                        // \P<letter>: negated one-letter category. Only
                        // \PC (non-control) appears in this workspace.
                        match input.pop() {
                            Some('C') => Node::NotControl,
                            other => {
                                return Err(Error(format!(
                                    "unsupported category escape \\P{other:?}"
                                )))
                            }
                        }
                    }
                    Some(esc) => Node::Lit(esc),
                    None => return Err(Error("dangling backslash".into())),
                },
                '?' | '*' | '+' | '{' => {
                    return Err(Error(format!("dangling quantifier {c:?}")));
                }
                lit => Node::Lit(lit),
            };
            let (min, max) = parse_quantifier(input)?;
            out.push(Quantified { node, min, max });
        }
        if in_group {
            return Err(Error("unclosed group".into()));
        }
        Ok(out)
    }

    fn parse_quantifier(input: &mut Vec<char>) -> Result<(u32, u32), Error> {
        match input.last() {
            Some('?') => {
                input.pop();
                Ok((0, 1))
            }
            Some('*') => {
                input.pop();
                Ok((0, UNBOUNDED_CAP))
            }
            Some('+') => {
                input.pop();
                Ok((1, UNBOUNDED_CAP))
            }
            Some('{') => {
                input.pop();
                let mut body = String::new();
                loop {
                    match input.pop() {
                        Some('}') => break,
                        Some(c) => body.push(c),
                        None => return Err(Error("unclosed {…} quantifier".into())),
                    }
                }
                let parse_n = |s: &str| {
                    s.trim()
                        .parse::<u32>()
                        .map_err(|_| Error(format!("bad repeat count {s:?}")))
                };
                if let Some((lo, hi)) = body.split_once(',') {
                    let min = parse_n(lo)?;
                    let max = if hi.trim().is_empty() {
                        min + UNBOUNDED_CAP
                    } else {
                        parse_n(hi)?
                    };
                    if max < min {
                        return Err(Error(format!("inverted repeat {body:?}")));
                    }
                    Ok((min, max))
                } else {
                    let n = parse_n(&body)?;
                    Ok((n, n))
                }
            }
            _ => Ok((1, 1)),
        }
    }

    fn parse_class(input: &mut Vec<char>) -> Result<Vec<(char, char)>, Error> {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = input.pop().ok_or_else(|| Error("unclosed class".into()))?;
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    return Ok(ranges);
                }
                '-' => {
                    // Range if we have a start and a following end char;
                    // otherwise a literal dash (leading/trailing).
                    match (pending.take(), input.last()) {
                        (Some(start), Some(&end)) if end != ']' => {
                            input.pop();
                            if (end as u32) < (start as u32) {
                                return Err(Error(format!("inverted range {start}-{end}")));
                            }
                            ranges.push((start, end));
                        }
                        (start, _) => {
                            if let Some(s) = start {
                                ranges.push((s, s));
                            }
                            ranges.push(('-', '-'));
                        }
                    }
                }
                '\\' => {
                    let esc = input
                        .pop()
                        .ok_or_else(|| Error("dangling backslash".into()))?;
                    if let Some(p) = pending.replace(esc) {
                        ranges.push((p, p));
                    }
                }
                lit => {
                    if let Some(p) = pending.replace(lit) {
                        ranges.push((p, p));
                    }
                }
            }
        }
    }

    fn gen_class(ranges: &[(char, char)], rng: &mut TestRng, out: &mut String) {
        let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
        let mut pick = rng.random_range(0..total);
        for (a, b) in ranges {
            let span = *b as u32 - *a as u32 + 1;
            if pick < span {
                // Skip the surrogate gap; ranges in this workspace never
                // straddle it, but be safe.
                let cp = *a as u32 + pick;
                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                return;
            }
            pick -= span;
        }
        unreachable!("class pick out of bounds");
    }

    fn gen_node(q: &Quantified, rng: &mut TestRng, out: &mut String) {
        let reps = rng.random_range(q.min..=q.max);
        for _ in 0..reps {
            match &q.node {
                Node::Lit(c) => out.push(*c),
                Node::Class(ranges) => gen_class(ranges, rng, out),
                Node::NotControl => {
                    // Mostly printable ASCII, occasionally higher planes.
                    if rng.random_bool(0.8) {
                        out.push(char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap());
                    } else {
                        let cp = rng.random_range(0xA0u32..0x2FFF);
                        out.push(char::from_u32(cp).unwrap_or('я'));
                    }
                }
                Node::Group(inner) => {
                    for part in inner {
                        gen_node(part, rng, out);
                    }
                }
            }
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for q in &self.seq {
                gen_node(q, rng, &mut out);
            }
            out
        }
    }
}

/// Run property tests over generated inputs.
///
/// Supports an optional leading `#![proptest_config(...)]` and any
/// number of `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng); )*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                }
            }
        }
    )*};
}

/// Define a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($argn:ident : $argt:ty),* $(,)?)
        ($($bind:ident in $strat:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strat,)*),
                move |($($bind,)*)| $body,
            )
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($arm)),+
        ])
    };
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property-test file typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample, strategy, string};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::case_rng;
    use crate::Strategy;

    #[test]
    fn regex_generates_matching_strings() {
        let mut rng = case_rng("shim::regex", 0);
        let strat = crate::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap();
        for _ in 0..200 {
            let s = strat.gen_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 16, "bad len: {s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            assert!(!s.starts_with('-') && !s.ends_with('-'), "bad edge: {s:?}");
        }
        let cyr = crate::string::string_regex("[а-яё]{1,20}").unwrap();
        for _ in 0..50 {
            let s = cyr.gen_value(&mut rng);
            let n = s.chars().count();
            assert!((1..=20).contains(&n));
            assert!(
                s.chars().all(|c| ('а'..='я').contains(&c) || c == 'ё'),
                "{s:?}"
            );
        }
        let nc = crate::string::string_regex("\\PC{0,60}").unwrap();
        for _ in 0..50 {
            let s = nc.gen_value(&mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec((0u32..512, any::<bool>()), 1..25);
        let a = strat.gen_value(&mut case_rng("shim::det", 3));
        let b = strat.gen_value(&mut case_rng("shim::det", 3));
        let c = strat.gen_value(&mut case_rng("shim::det", 4));
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely
    }

    prop_compose! {
        fn arb_pair(base: u32)(lo in 0u32..50, hi in 50u32..100) -> (u32, u32) {
            (base + lo, base + hi)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            v in crate::collection::vec(0i32..100, 1..10),
            pair in arb_pair(1000),
            pick in any::<crate::sample::Index>(),
            tag in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assume!(!v.is_empty());
            let x = v[pick.index(v.len())];
            prop_assert!((0..100).contains(&x));
            prop_assert!(pair.0 < pair.1, "pair ordered: {:?}", pair);
            prop_assert_ne!(tag, "c");
            prop_assert_eq!(tag.len(), 1);
        }
    }
}
