//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! `parking_lot` cannot be fetched. This shim wraps `std::sync` primitives
//! and exposes the non-poisoning guard-returning API the workspace relies
//! on (`RwLock::read`/`write`, `Mutex::lock`). Poisoned locks are treated
//! as fatal, matching parking_lot's "no poisoning" semantics closely
//! enough for single-process deterministic simulation.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `t`.
    pub fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `t`.
    pub fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
