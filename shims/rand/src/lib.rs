//! Offline shim for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment has no crates-registry access, so this crate
//! supplies the `rand` API surface the workspace calls — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random, random_range,
//! random_bool, random_iter}`, and `seq::IndexedRandom::choose` — backed
//! by xoshiro256** seeded through splitmix64.
//!
//! Determinism contract: the repo's reproducibility guarantees are
//! *within-repo* (same seed ⇒ same simulation on this codebase), not
//! bit-compatibility with upstream rand's ChaCha12-based `StdRng`.
//! Every draw here is a pure function of the 64-bit seed.

/// Minimal core RNG interface: a source of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (top half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build the RNG from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256**.
    ///
    /// Fast, tiny, and passes BigCrush; statistical quality is more than
    /// adequate for simulation draws. Not cryptographic — nothing in the
    /// simulation needs a CSPRNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types drawable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types drawable uniformly from a bounded range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`. Panics if empty.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range in random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::random_range`].
///
/// A single generic impl per range shape (as in real rand) so that type
/// inference can flow `Range<{integer}> ⇒ T = {integer} ⇒ i32`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing RNG operations, rand-0.9-style.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool p={p} out of range");
        f64::sample(self) < p
    }

    /// Endless iterator of uniform draws, consuming the RNG.
    fn random_iter<T: Standard>(self) -> RandomIter<Self, T>
    where
        Self: Sized,
    {
        RandomIter {
            rng: self,
            _t: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Iterator returned by [`Rng::random_iter`].
pub struct RandomIter<R, T> {
    rng: R,
    _t: core::marker::PhantomData<T>,
}

impl<R: RngCore, T: Standard> Iterator for RandomIter<R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(T::sample(&mut self.rng))
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let a: Vec<u32> = StdRng::seed_from_u64(99).random_iter().take(8).collect();
        let b: Vec<u32> = StdRng::seed_from_u64(99).random_iter().take(8).collect();
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(100).random();
        let d: u64 = StdRng::seed_from_u64(99).random();
        assert_ne!(c, d);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..45);
            assert!((3..45).contains(&x));
            let y: u8 = rng.random_range(4u8..=28);
            assert!((4..=28).contains(&y));
            let f = rng.random_range(0.0..10.0);
            assert!((0.0..10.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = *items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
