//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types but
//! never serializes anything (there is no serde_json or similar in the
//! tree) — the derives only document intent and keep the door open for a
//! real serde later. These inert derives emit no code; they exist so the
//! `#[derive(...)]` and `#[serde(...)]` attributes parse. The matching
//! `serde` shim provides blanket trait impls, so bounds still hold.

use proc_macro::TokenStream;

/// Inert `#[derive(Serialize)]`; registers `#[serde(...)]` as a known
/// helper attribute and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `#[derive(Deserialize)]`; registers `#[serde(...)]` as a known
/// helper attribute and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
