//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness,
//! `Criterion`/`BenchmarkGroup`/`Bencher` with `bench_function`,
//! `sample_size`, `throughput`, and `black_box`. Measurement is
//! deliberately simple: each benchmark takes `sample_size` timed samples
//! of one iteration each and reports min/median/mean to stderr. No
//! statistical analysis, HTML reports, or baseline comparison — enough
//! to keep `cargo bench` runnable and the timings comparable run-to-run
//! on one machine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-benchmark timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples (plus one warmup).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup / lazy-init
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        eprintln!("bench {name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let secs = median.as_secs_f64().max(1e-12);
            format!("  {:>10.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            let secs = median.as_secs_f64().max(1e-12);
            format!("  {:>10.0} elem/s", n as f64 / secs)
        }
        None => String::new(),
    };
    eprintln!("bench {name:<40} min {min:>12?}  median {median:>12?}  mean {mean:>12?}{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &mut b.samples, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput (reported alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, name);
        report(&full, &mut b.samples, self.throughput);
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Define `main` from one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }

    criterion_group!(shim_benches, quick);

    #[test]
    fn harness_runs() {
        shim_benches();
    }
}
