//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Nothing in the tree actually serializes (no serde_json etc.); the
//! derives on model types document intent. `Serialize`/`Deserialize`
//! here are marker traits with blanket impls, and the re-exported
//! derives (from the sibling `serde_derive` shim) are inert. Swapping in
//! the real serde later requires no source changes outside Cargo.toml.

/// Marker for "can be serialized". Blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for "can be deserialized". Blanket-implemented for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker for "deserializable without borrowing". Blanket-implemented.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
