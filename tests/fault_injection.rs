//! Fault-injection robustness: whatever faults are scheduled — timeline
//! infrastructure outages, flapping boxes, degraded links — same-seed runs
//! stay bit-identical, and the measurement pipeline degrades into flagged
//! data gaps instead of corrupting its output.

use proptest::prelude::*;
use ruwhere::netsim::{FaultWindow, LinkFault, ServerFault, ServerFaultMode, SimTime};
use ruwhere::prelude::*;
use std::net::Ipv4Addr;

/// A randomly drawn fault schedule, applied identically to two worlds.
#[derive(Debug, Clone)]
struct PlanSpec {
    /// Days after the study start at which the timeline fault fires.
    fault_day_offset: i32,
    target: FaultTarget,
    duration_hours: u32,
    /// Direct server fault inside the provider infra space (may or may
    /// not land on a live name server — both must be deterministic).
    server_octets: (u8, u8),
    server_flaps: bool,
    /// Whole-window link degradation.
    link_loss: f64,
    link_latency_us: u64,
    link_provider: u8,
}

fn arb_plan() -> impl Strategy<Value = PlanSpec> {
    (
        1i32..8,
        prop_oneof![
            Just(FaultTarget::RuTldServers),
            Just(FaultTarget::Root),
            Just(FaultTarget::GtldServers),
        ],
        1u32..30,
        (0u8..8, 1u8..255),
        any::<bool>(),
        0.0f64..0.25,
        0u64..20_000,
        0u8..8,
    )
        .prop_map(
            |(
                fault_day_offset,
                target,
                duration_hours,
                server_octets,
                server_flaps,
                link_loss,
                link_latency_us,
                link_provider,
            )| PlanSpec {
                fault_day_offset,
                target,
                duration_hours,
                server_octets,
                server_flaps,
                link_loss,
                link_latency_us,
                link_provider,
            },
        )
}

/// Build a tiny world under `spec`'s fault schedule, advance to the fault
/// day and sweep it.
fn sweep_under(spec: &PlanSpec) -> DailySweep {
    let mut cfg = WorldConfig::tiny();
    let fault_date = cfg.start.add_days(spec.fault_day_offset);
    cfg.extra_events.push((
        fault_date,
        ConflictEvent::InfrastructureFault(InfraFault {
            target: spec.target,
            duration_hours: spec.duration_hours,
        }),
    ));
    let mut world = World::new(cfg);

    let mode = if spec.server_flaps {
        ServerFaultMode::Flapping { period_us: 750_000 }
    } else {
        ServerFaultMode::Outage
    };
    let plan = world.network_mut().faults_mut();
    plan.add_server_fault(ServerFault {
        addr: Ipv4Addr::new(20, spec.server_octets.0, 128, spec.server_octets.1),
        port: None,
        mode,
        window: FaultWindow::from(SimTime::ZERO),
    });
    plan.add_link_fault(LinkFault {
        prefix: format!("20.{}.0.0/16", spec.link_provider).parse().unwrap(),
        extra_loss: spec.link_loss,
        extra_latency_us: spec.link_latency_us,
        window: FaultWindow::from(SimTime::ZERO),
    });

    world.advance_to(fault_date);
    let mut scanner = OpenIntelScanner::new(&world);
    scanner.sweep(&mut world)
}

proptest! {
    // World construction dominates each case; a handful of cases already
    // covers all three fault targets and both server-fault modes.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_fault_plans_keep_sweeps_bit_identical(spec in arb_plan()) {
        let a = sweep_under(&spec);
        let b = sweep_under(&spec);
        prop_assert_eq!(a.date, b.date);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.domains, b.domains);
    }

    #[test]
    fn faulted_sweeps_never_corrupt_analyses(spec in arb_plan()) {
        let sweep = sweep_under(&spec);
        // However hard the faults bite, the output stays structurally
        // sound: a full sweep covers every seed; a salvaged partial keeps
        // only records that actually measured.
        if sweep.is_partial() {
            prop_assert!(sweep.domains.iter().all(|d| d.has_ns_data() || d.has_apex_data()));
            prop_assert!((sweep.domains.len() as u64) <= sweep.stats.seeded);
        } else {
            prop_assert_eq!(sweep.domains.len() as u64, sweep.stats.seeded);
        }
        // Composition still partitions whatever was kept.
        let mut series = CompositionSeries::new(InfraKind::NameServers);
        series.observe(&sweep);
        prop_assert_eq!(
            series.at(sweep.date).unwrap().total() as usize,
            sweep.domains.len()
        );
    }
}

#[test]
fn tld_outage_with_background_loss_degrades_gracefully() {
    // The paper's worst day, plus ordinary packet loss on top: the sweep
    // is salvaged as a flagged partial and the failure causes are counted;
    // the next day recovers fully.
    let mut cfg = WorldConfig::tiny();
    let outage = cfg.start.add_days(9);
    cfg.extra_events.push((
        outage,
        ConflictEvent::InfrastructureFault(InfraFault {
            target: FaultTarget::RuTldServers,
            duration_hours: 20,
        }),
    ));
    let mut world = World::new(cfg);
    world.network_mut().loss_rate = 0.05;
    let mut scanner = OpenIntelScanner::new(&world);

    world.advance_to(outage);
    let gap = scanner.sweep(&mut world);
    assert!(
        gap.is_partial(),
        "a TLD outage day must be salvaged as partial"
    );
    assert!(gap.stats.ns_failures * 2 > gap.stats.seeded);
    assert!(gap.stats.timeouts > 0, "the outage manifests as timeouts");
    assert!(gap.stats.retries_spent > 0);

    world.advance_to(outage.succ());
    let next = scanner.sweep(&mut world);
    assert!(!next.is_partial(), "the fault must lift by the next day");
    let failure_rate = next.stats.ns_failures as f64 / next.stats.seeded as f64;
    assert!(
        failure_rate < 0.02,
        "recovery day failure rate too high: {:.1}%",
        100.0 * failure_rate
    );
}
