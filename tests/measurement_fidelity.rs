//! Measurement fidelity: the active-DNS pipeline must agree with ground
//! truth for *every* domain it measures — resolution through root, TLD and
//! provider servers, geolocation annotation, ASN attribution, and NS-name
//! extraction all have to line up.

use ruwhere::prelude::*;
use ruwhere::world::{catalog, DnsPlan};

#[test]
fn every_measured_record_matches_ground_truth() {
    let mut world = World::new(WorldConfig::tiny());
    // Advance into the conflict so events have fired (harder case than a
    // freshly built world).
    world.advance_to(Date::from_ymd(2022, 3, 20));
    let mut scanner = OpenIntelScanner::new(&world);
    let sweep = scanner.sweep(&mut world);

    let plans = catalog::dns_plans();
    let mut checked_apex = 0;
    let mut checked_ns = 0;
    for rec in &sweep.domains {
        let Some(truth) = world.domain_state(&rec.domain) else {
            continue; // infra domains like reg.ru have no DomainState
        };

        // Apex A records: the measured set must equal the ground-truth set.
        if rec.has_apex_data() {
            let mut measured: Vec<std::net::Ipv4Addr> =
                rec.apex_addrs.iter().map(|a| a.ip).collect();
            measured.sort();
            let mut expected = vec![truth.hosting.primary_ip];
            if let Some((_, ip)) = truth.hosting.secondary {
                expected.push(ip);
            }
            expected.sort();
            assert_eq!(measured, expected, "apex mismatch for {}", rec.domain);

            // ASN annotation matches the hosting provider's ASN.
            let providers = catalog::providers();
            let expected_asn = providers[truth.hosting.primary.0 as usize].asn;
            assert!(
                rec.apex_addrs.iter().any(|a| a.asn == Some(expected_asn)),
                "ASN mismatch for {}: {:?} lacks {}",
                rec.domain,
                rec.apex_addrs,
                expected_asn
            );
            checked_apex += 1;
        }

        // NS names: managed plans must report exactly the plan's NS set.
        if let DnsPlan::Managed(p) = &truth.dns {
            if !rec.ns_names.is_empty() {
                let mut measured: Vec<String> =
                    rec.ns_names.iter().map(|n| n.as_str().to_owned()).collect();
                measured.sort();
                let mut expected: Vec<String> = plans[p.0 as usize]
                    .ns
                    .iter()
                    .map(|h| h.host.to_owned())
                    .collect();
                expected.sort();
                assert_eq!(measured, expected, "NS mismatch for {}", rec.domain);
                checked_ns += 1;
            }
        }
    }
    assert!(checked_apex > 300, "only {checked_apex} apex checks ran");
    assert!(checked_ns > 300, "only {checked_ns} NS checks ran");
}

#[test]
fn geolocation_annotation_matches_provider_countries() {
    let mut world = World::new(WorldConfig::tiny());
    let mut scanner = OpenIntelScanner::new(&world);
    let sweep = scanner.sweep(&mut world);
    let providers = catalog::providers();

    let mut checked = 0;
    for rec in &sweep.domains {
        let Some(truth) = world.domain_state(&rec.domain) else {
            continue;
        };
        for addr in &rec.apex_addrs {
            if addr.ip == truth.hosting.primary_ip {
                let expected = providers[truth.hosting.primary.0 as usize].country;
                assert_eq!(
                    addr.country,
                    Some(expected),
                    "geo mismatch for {} at {}",
                    rec.domain,
                    addr.ip
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 300, "only {checked} geo checks ran");
}

#[test]
fn sanctioned_subset_is_measured_completely() {
    let mut world = World::new(WorldConfig::tiny());
    world.publish_tld_zones();
    let mut scanner = OpenIntelScanner::new(&world);
    let sweep = scanner.sweep(&mut world);
    let sanctions = world.sanctions().clone();

    // Every sanctioned domain listed by study end must appear in the sweep
    // with usable NS data (they are all registered and delegated).
    let mut found = 0;
    for rec in &sweep.domains {
        if sanctions.is_sanctioned(&rec.domain, Date::from_ymd(2022, 12, 31)) {
            assert!(
                rec.has_ns_data(),
                "sanctioned {} failed to resolve",
                rec.domain
            );
            found += 1;
        }
    }
    assert_eq!(found, sanctions.len());
}
