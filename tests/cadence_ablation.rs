//! Sweep-cadence ablation: daily sweeps pin the Netnod transition to its
//! exact day; weekly sweeps can only bracket it. Also exercises the
//! measurement-outage model (Figure 1's 2021-03-22 dip, footnote 8).

use ruwhere::prelude::*;

#[test]
fn daily_cadence_pins_the_netnod_day() {
    let mut world = WorldConfig::tiny();
    world.end = Date::from_ymd(2022, 3, 8);
    let mut cfg = StudyConfig::paper_schedule(world);
    cfg.daily_from = Date::from_ymd(2022, 2, 26);
    let r = run_study(&cfg);

    // With daily sweeps the partial share is flat through 03-02 and drops
    // on 03-03 exactly.
    let p = |d: Date| r.ns_composition.at(d).unwrap().pct_partial();
    let before = p(Date::from_ymd(2022, 3, 2));
    let event = p(Date::from_ymd(2022, 3, 3));
    assert!(
        before - event > 0.8,
        "transition must land on 2022-03-03: {before:.2}% → {event:.2}%"
    );
    // And 03-01 ≈ 03-02 (no early drift).
    let earlier = p(Date::from_ymd(2022, 3, 1));
    assert!((earlier - before).abs() < 0.8);
}

#[test]
fn weekly_cadence_only_brackets_the_event() {
    let mut world = WorldConfig::tiny();
    world.end = Date::from_ymd(2022, 3, 20);
    let mut cfg = StudyConfig::paper_schedule(world);
    // Weekly throughout: 01-01, 01-08, …, 02-26, 03-05, 03-12, 03-19.
    cfg.daily_from = Date::from_ymd(2022, 3, 21);
    let r = run_study(&cfg);

    let dates: Vec<Date> = r.ns_composition.rows().map(|(d, _)| d).collect();
    assert!(
        !dates.contains(&Date::from_ymd(2022, 3, 3)),
        "weekly schedule must not include the event day itself"
    );
    // The drop is only visible between the straddling sweeps.
    let before = r
        .ns_composition
        .at(Date::from_ymd(2022, 2, 26))
        .unwrap()
        .pct_partial();
    let after = r
        .ns_composition
        .at(Date::from_ymd(2022, 3, 5))
        .unwrap()
        .pct_partial();
    assert!(
        before - after > 0.8,
        "the weekly series still shows the drop across the bracket: {before:.2}% → {after:.2}%"
    );
}

#[test]
fn outage_produces_the_figure1_dip() {
    // End-to-end mechanistic reproduction of the Figure-1 outage dip
    // (footnote 8): a timeline `InfrastructureFault` takes the `.ru` TLD
    // servers down at the network layer, the day's sweep mostly times out
    // and is salvaged as a partial sweep, the composition series dips, and
    // the next day's sweep recovers once the fault is lifted. No analysis
    // layer ever edits its own output.
    let mut world = WorldConfig::tiny();
    world.end = Date::from_ymd(2022, 2, 1);
    let start = world.start;
    let outage = Date::from_ymd(2022, 1, 15);
    world.extra_events.push((
        outage,
        ConflictEvent::InfrastructureFault(InfraFault {
            target: FaultTarget::RuTldServers,
            duration_hours: 20,
        }),
    ));
    let mut cfg = StudyConfig::paper_schedule(world);
    cfg.daily_from = start;
    let r = run_study(&cfg);

    let total = |d: Date| r.ns_composition.at(d).unwrap().total();
    let day_before = total(outage.pred());
    let day_of = total(outage);
    let day_after = total(outage.succ());
    // Quoted in EXPERIMENTS.md; run with `--nocapture` to see them.
    println!("figure-1 dip: {day_before} → {day_of} → {day_after} records");
    assert!(
        day_of < day_before / 2,
        "outage day must lose most records: {day_before} → {day_of}"
    );
    assert!(
        day_after > day_before * 9 / 10,
        "the dataset recovers the next day: {day_after} vs {day_before}"
    );
    // The dip is a flagged measurement gap, not real domain deletion:
    // the series knows the day was partial and can impute across it.
    assert!(r.ns_composition.is_partial_day(outage));
    assert!(!r.ns_composition.is_partial_day(outage.pred()));
    let (imputed, flagged) = r.ns_composition.imputed_at(outage, 7).unwrap();
    assert!(flagged);
    assert_eq!(imputed.total(), day_before);
}
