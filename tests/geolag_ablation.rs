//! The footnote-5 ablation: when the Netnod event is modeled as a prefix
//! move instead of an IP reconfiguration, geolocation-based composition
//! lags the ASN-based view until the next IP2Location snapshot.
//!
//! > "We note that there is a small percentage of disagreement in
//! > country-level geolocation and inferences made regarding relocation
//! > may 'lag behind', in particular when IP address (space) of hosting
//! > or DNS infrastructure is moved rather than changed." — paper, fn. 5

use ruwhere::prelude::*;
use ruwhere_dns::{Name, RType};
use ruwhere_world::ConflictEvent;

fn world_with(prefix_move: bool) -> ruwhere_world::World {
    let mut cfg = WorldConfig::tiny();
    cfg.netnod_prefix_move = prefix_move;
    // A long refresh interval makes the lag unmistakable.
    cfg.geo_snapshot_interval_days = 28;
    cfg.geo_snapshot_lag_days = 3;
    World::new(cfg)
}

/// Resolve ns4-cloud.nic.ru and return (geo country, asn country proxy).
fn observe(world: &mut ruwhere_world::World) -> (Option<Country>, Option<Asn>) {
    world.publish_tld_zones();
    let mut resolver =
        ruwhere::authdns::IterativeResolver::new(world.scanner_ip(), world.root_hints());
    let host: Name = "ns4-cloud.nic.ru".parse().unwrap();
    let addrs = resolver
        .resolve(world.network_mut(), &host, RType::A)
        .expect("cloud host resolves")
        .addresses();
    assert_eq!(addrs.len(), 1);
    let ip = addrs[0];
    (
        world.geo().lookup(world.today(), ip),
        world.network().topology().asn_of(ip),
    )
}

#[test]
fn ip_reconfiguration_flips_geolocation_immediately() {
    let mut w = world_with(false);
    let event = w.timeline().date_of(ConflictEvent::NetnodRehoming).unwrap();
    w.advance_to(event);
    let (geo, _) = observe(&mut w);
    assert_eq!(
        geo.unwrap().code(),
        "RU",
        "new addresses geolocate correctly at once"
    );
}

#[test]
fn prefix_move_lags_until_next_geo_snapshot() {
    let mut w = world_with(true);
    let event = w.timeline().date_of(ConflictEvent::NetnodRehoming).unwrap();
    w.advance_to(event);

    // Immediately after the event: BGP (ASN) sees RU-CENTER, but the
    // geolocation snapshot still says Sweden — the measurement artifact.
    let (geo, asn) = observe(&mut w);
    assert_eq!(asn.unwrap(), Asn::RU_CENTER, "BGP view flips immediately");
    assert_eq!(
        geo.unwrap().code(),
        "SE",
        "geolocation still reports the pre-move country"
    );

    // After the next snapshot (interval 28d + lag 3d from study start),
    // geolocation catches up.
    w.advance_to(event.add_days(35));
    let (geo, asn) = observe(&mut w);
    assert_eq!(asn.unwrap(), Asn::RU_CENTER);
    assert_eq!(
        geo.unwrap().code(),
        "RU",
        "geolocation catches up at the next vendor refresh"
    );
}
