//! Failure injection: the measurement pipeline must degrade gracefully
//! under packet loss — retries recover most resolutions, failures are
//! reported as data gaps rather than corrupting the analyses.

use ruwhere::prelude::*;

fn sweep_with_loss(loss: f64) -> (DailySweep, u64) {
    let mut world = World::new(WorldConfig::tiny());
    world.network_mut().loss_rate = loss;
    let mut scanner = OpenIntelScanner::new(&world);
    let sweep = scanner.sweep(&mut world);
    let dropped = world.network().stats().dropped;
    (sweep, dropped)
}

#[test]
fn lossless_baseline_is_clean() {
    let (sweep, dropped) = sweep_with_loss(0.0);
    assert_eq!(dropped, 0);
    assert_eq!(sweep.stats.ns_failures, 0);
}

#[test]
fn moderate_loss_is_absorbed_by_retries() {
    let (sweep, dropped) = sweep_with_loss(0.05);
    assert!(dropped > 0, "the loss process must actually fire");
    // With 2 transport attempts and resolver-level server fallback, 5%
    // per-packet loss should leave the dataset nearly complete.
    let failure_rate = sweep.stats.ns_failures as f64 / sweep.stats.seeded as f64;
    assert!(
        failure_rate < 0.02,
        "5% loss should cost <2% of domains, lost {:.1}%",
        100.0 * failure_rate
    );
    // Retries cost extra queries relative to the lossless baseline.
    let (clean, _) = sweep_with_loss(0.0);
    assert!(sweep.stats.queries >= clean.stats.queries);
    // And extra virtual time (timeouts are expensive).
    assert!(sweep.stats.virtual_elapsed_us > clean.stats.virtual_elapsed_us);
}

#[test]
fn heavy_loss_degrades_but_never_corrupts() {
    let (sweep, _) = sweep_with_loss(0.30);
    // Many failures are expected…
    assert!(sweep.stats.ns_failures > 0);
    // …but every record that DID resolve is structurally sound, and the
    // composition analysis runs without panicking.
    let mut series = CompositionSeries::new(InfraKind::NameServers);
    series.observe(&sweep);
    let counts = series.at(sweep.date).unwrap();
    assert_eq!(counts.total() as usize, sweep.domains.len());
    // Failed domains land in `unknown`, not in a composition bucket.
    // (`unknown` can exceed `ns_failures`: a domain whose NS RRset resolved
    // but whose NS-host addresses all failed also lacks country data.)
    assert!(counts.unknown >= sweep.stats.ns_failures);
    // Resolved records still carry annotations.
    for rec in sweep.domains.iter().filter(|d| d.has_ns_data()).take(20) {
        assert!(rec.ns_addrs.iter().all(|a| a.asn.is_some()));
    }
}

#[test]
fn loss_is_deterministic_too() {
    let (a, dropped_a) = sweep_with_loss(0.10);
    let (b, dropped_b) = sweep_with_loss(0.10);
    assert_eq!(dropped_a, dropped_b);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.domains, b.domains);
}
