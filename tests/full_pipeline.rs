//! Workspace integration: the full measurement-and-analysis pipeline at
//! tiny scale, asserting the paper's qualitative findings end-to-end.
//!
//! Everything here flows through public APIs only: world → network →
//! scanners → analyses → figures. No test reads simulation ground truth
//! except to validate measurement fidelity explicitly.

use ruwhere::prelude::*;
use ruwhere_core::figures;

use std::sync::OnceLock;

/// One shared study (expensive to build) reused by every assertion.
fn study() -> &'static StudyResults {
    static STUDY: OnceLock<StudyResults> = OnceLock::new();
    STUDY.get_or_init(|| {
        let mut cfg = StudyConfig::test_schedule();
        cfg.daily_from = Date::from_ymd(2022, 2, 20);
        run_study(&cfg)
    })
}

#[test]
fn finding_1_ns_composition_shifts_toward_full_russian() {
    let r = study();
    let ((_, first), (_, last)) = r.ns_composition.extrema().unwrap();
    assert!(
        last.pct_full() > first.pct_full() + 1.0,
        "full-Russian NS must rise across the conflict: {:.1}% → {:.1}%",
        first.pct_full(),
        last.pct_full()
    );
    // But the change is modest — single digits, not a mass migration (§6).
    assert!(
        last.pct_full() - first.pct_full() < 15.0,
        "change should be modest, got {:+.1} pts",
        last.pct_full() - first.pct_full()
    );
}

#[test]
fn finding_2_netnod_event_is_a_step_change() {
    let r = study();
    let before = r.ns_composition.at(Date::from_ymd(2022, 3, 2)).unwrap();
    let after = r.ns_composition.at(Date::from_ymd(2022, 3, 4)).unwrap();
    assert!(
        after.pct_partial() < before.pct_partial() - 0.5,
        "partial must drop at the Netnod rehoming: {:.2}% → {:.2}%",
        before.pct_partial(),
        after.pct_partial()
    );
    assert!(after.pct_full() > before.pct_full());
}

#[test]
fn finding_3_hosting_composition_is_stable_and_majority_russian() {
    let r = study();
    for (_, c) in r.hosting_composition.rows() {
        assert!(
            (60.0..85.0).contains(&c.pct_full()),
            "hosting full% out of band: {:.1}",
            c.pct_full()
        );
        assert!(c.pct_partial() < 3.0, "split hosting stays rare");
    }
}

#[test]
fn finding_4_sanctioned_domains_repatriate_dns() {
    let r = study();
    let feb24 = r.sanctioned_ns.at(Date::from_ymd(2022, 2, 24)).unwrap();
    let mar4 = r.sanctioned_ns.at(Date::from_ymd(2022, 3, 4)).unwrap();
    assert!(
        feb24.pct_partial() > 20.0,
        "substantial partial share pre-conflict, got {:.1}%",
        feb24.pct_partial()
    );
    assert!(
        mar4.pct_full() > 85.0,
        "vast majority fully Russian by March 4, got {:.1}%",
        mar4.pct_full()
    );
}

#[test]
fn finding_5_sedo_exodus_and_amazon_attrition() {
    let r = study();
    let end = *r.retained.keys().next_back().unwrap();
    let start = Date::from_ymd(2022, 3, 8);

    let (_, sedo) = figures::movement_table(r, Asn::SEDO, "t", start, end, "").unwrap();
    let orig = sedo.original().max(1);
    assert!(
        sedo.remained() as f64 / orig as f64 <= 0.25,
        "Sedo keeps almost nobody: {}/{}",
        sedo.remained(),
        orig
    );

    let (_, amazon) = figures::movement_table(r, Asn::AMAZON, "t", start, end, "").unwrap();
    let orig = amazon.original().max(1);
    let remained = amazon.remained() as f64 / orig as f64;
    assert!(
        (0.15..0.75).contains(&remained),
        "Amazon keeps a large minority: {remained:.2}"
    );
    // Amazon loses proportionally fewer customers than Sedo.
    assert!(
        remained > sedo.remained() as f64 / sedo.original().max(1) as f64,
        "Amazon must retain more than Sedo"
    );
}

#[test]
fn finding_6_serverel_absorbs_the_exodus() {
    let r = study();
    let end = *r.retained.keys().next_back().unwrap();
    let (_, sedo) =
        figures::movement_table(r, Asn::SEDO, "t", Date::from_ymd(2022, 3, 8), end, "").unwrap();
    let dests = sedo.destinations();
    let serverel = dests.get(&Asn::SERVEREL).copied().unwrap_or(0);
    let max_dest = dests.values().copied().max().unwrap_or(0);
    assert!(
        serverel == max_dest && serverel > 0,
        "Serverel must be the top destination, got {dests:?}"
    );
}

#[test]
fn finding_7_cloudflare_business_as_usual() {
    let r = study();
    let end = *r.retained.keys().next_back().unwrap();
    let (_, cf) =
        figures::movement_table(r, Asn::CLOUDFLARE, "t", Date::from_ymd(2022, 3, 7), end, "")
            .unwrap();
    let orig = cf.original().max(1);
    assert!(
        cf.remained() as f64 / orig as f64 > 0.75,
        "Cloudflare retains its base: {}/{}",
        cf.remained(),
        orig
    );
}

#[test]
fn finding_8_lets_encrypt_concentration() {
    let r = study();
    let table = r.issuance.period_table(3);
    let pre = &table.periods[&Period::PreConflict];
    let post = &table.periods[&Period::PostSanctions];
    let le_pre = pre.0.iter().find(|x| x.org == "Let's Encrypt").unwrap().pct;
    let le_post = post
        .0
        .iter()
        .find(|x| x.org == "Let's Encrypt")
        .unwrap()
        .pct;
    assert!(le_pre > 80.0, "LE dominates pre-conflict: {le_pre:.1}%");
    assert!(
        le_post > le_pre,
        "the conflict concentrates issuance further: {le_pre:.1}% → {le_post:.1}%"
    );
}

#[test]
fn finding_9_issuance_volume_dips_mildly() {
    let r = study();
    let pre = r
        .issuance
        .daily_volume(Date::from_ymd(2022, 1, 1), Date::from_ymd(2022, 2, 23));
    let post = r
        .issuance
        .daily_volume(Date::from_ymd(2022, 3, 27), Date::from_ymd(2022, 5, 15));
    assert!(pre > 0.0);
    let ratio = post / pre;
    assert!(
        (0.6..1.1).contains(&ratio),
        "post/pre volume ratio should be ≈115/130, got {ratio:.2}"
    );
}

#[test]
fn finding_10_sanctioned_revocation_rates_exceed_background() {
    let r = study();
    let mut saw_full_revoker = false;
    for row in r.revocation.rows().values() {
        if row.sanctioned_issued > 0 && row.sanctioned_issued == row.sanctioned_revoked {
            saw_full_revoker = true;
        }
    }
    assert!(
        saw_full_revoker,
        "at least one CA revokes 100% of sanctioned certificates (paper: DigiCert, Sectigo)"
    );
}

#[test]
fn finding_11_russian_ca_visible_only_to_scans() {
    let r = study();
    let a = r.russian_ca.as_ref().expect("final IP scan ran");
    assert!(a.unique_certs > 0, "scans must see the Russian CA");
    assert_eq!(a.in_ct, 0, "the Russian CA must not appear in CT");
    assert!(
        a.sanctioned_covered > 0,
        "some sanctioned domains serve Russian CA certificates"
    );
    assert!(
        a.russian_tld_domains() > 0,
        "covered domains include .ru/.рф names"
    );
}

#[test]
fn measurement_agrees_with_paper_structure() {
    let r = study();
    // Dataset-scale invariants (§2): domains across two TLDs, multiple
    // ASNs for hosting, NS TLD diversity.
    assert!(r.asn_share.distinct_asns() > 10);
    assert!(r.tld_usage.distinct_tlds() > 10);
    let final_sweep = r.final_sweep().unwrap();
    let snap = r.interner.snapshot();
    let tld_of = |rec: &ruwhere::store::RecordView<'_>| snap.tld(snap.tld_of(rec.domain_sym()));
    assert!(final_sweep.records().any(|rec| tld_of(&rec) == "ru"));
    assert!(final_sweep.records().any(|rec| tld_of(&rec) == "xn--p1ai"));
    // Resolution health.
    let resolved = final_sweep
        .records()
        .filter(|rec| rec.has_ns_data())
        .count();
    assert!(resolved * 100 >= final_sweep.len() * 90);
}

#[test]
fn all_figures_render_from_one_study() {
    let r = study();
    // Smoke-render everything; panics/empties fail the test.
    assert!(!figures::fig1_series(r).is_empty());
    assert!(!figures::fig2_series(r).is_empty());
    assert!(!figures::fig3_series(r).is_empty());
    assert!(!figures::fig4_series(r).is_empty());
    assert!(!figures::fig5_series(r).is_empty());
    assert!(!figures::table1(r).is_empty());
    assert!(!figures::table2(r).is_empty());
    let (fig8, _) = figures::fig8_table(r);
    assert!(fig8.len() >= 5, "fig8 lists the top CAs");
    assert!(figures::russian_ca_table(r).is_some());
}

#[test]
fn finding_12_netnod_is_the_peak_transition_day() {
    use ruwhere_core::composition::Composition;
    let r = study();
    let (peak_date, n) = r
        .transitions
        .peak(Composition::Partial, Composition::Full)
        .expect("partial→full transitions exist");
    assert_eq!(
        peak_date,
        Date::from_ymd(2022, 3, 3),
        "the largest partial→full day must be the Netnod rehoming"
    );
    assert!(n >= 3, "the spike must dominate: only {n} domains");
}
