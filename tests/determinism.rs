//! Cross-crate determinism: identical configurations must produce
//! bit-identical measurements, analyses and artifacts.

use ruwhere::prelude::*;

fn small_study() -> StudyResults {
    let mut world = WorldConfig::tiny();
    world.end = Date::from_ymd(2022, 3, 10);
    let mut cfg = StudyConfig::paper_schedule(world);
    cfg.daily_from = Date::from_ymd(2022, 2, 25);
    run_study(&cfg)
}

#[test]
fn studies_are_bit_reproducible() {
    let a = small_study();
    let b = small_study();

    assert_eq!(a.sweeps_run, b.sweeps_run);
    assert_eq!(a.total_queries, b.total_queries);
    assert_eq!(a.certs.len(), b.certs.len());

    // Figure series render identically.
    assert_eq!(
        ruwhere_core::figures::fig1_series(&a).render(),
        ruwhere_core::figures::fig1_series(&b).render()
    );
    assert_eq!(
        ruwhere_core::figures::fig3_series(&a).render(),
        ruwhere_core::figures::fig3_series(&b).render()
    );
    assert_eq!(
        ruwhere_core::figures::table1(&a).render(),
        ruwhere_core::figures::table1(&b).render()
    );
    assert_eq!(
        ruwhere_core::figures::table2(&a).render(),
        ruwhere_core::figures::table2(&b).render()
    );

    // The study-wide symbol tables dump byte-identically, so symbols are
    // directly comparable across the two runs…
    assert_eq!(a.interner.dump(), b.interner.dump());
    // …and the retained columnar frames are byte-equal wholesale.
    let (da, db) = (a.final_sweep().unwrap(), b.final_sweep().unwrap());
    assert_eq!(da, db);
    // The engines did the same amount of single-pass work.
    assert_eq!(a.analysis, b.analysis);
}

#[test]
fn different_seeds_differ() {
    let mut w1 = WorldConfig::tiny();
    w1.end = Date::from_ymd(2022, 1, 20);
    let mut w2 = w1.clone();
    w2.seed ^= 0xDEADBEEF;

    let mut world1 = World::new(w1);
    let mut world2 = World::new(w2);
    let mut s1 = OpenIntelScanner::new(&world1);
    let mut s2 = OpenIntelScanner::new(&world2);
    let d1 = s1.sweep(&mut world1);
    let d2 = s2.sweep(&mut world2);
    assert_ne!(
        d1.domains, d2.domains,
        "different seeds must produce different worlds"
    );
}
