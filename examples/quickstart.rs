//! Quickstart: build a small simulated Russian domain ecosystem, run one
//! OpenINTEL-style sweep through its network, and classify what the
//! measurement sees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ruwhere::prelude::*;

fn main() {
    // A ~500-domain world over January–May 2022 (deterministic).
    let mut world = World::new(WorldConfig::tiny());
    println!(
        "world: {} live domains ({} sanctioned), {} ASes, day = {}",
        world.population(),
        world.sanctions().len(),
        world.network().topology().as_count(),
        world.today(),
    );

    // One full active-DNS sweep: zone-seeded, resolved over the simulated
    // Internet, geolocation-annotated.
    let mut scanner = OpenIntelScanner::new(&world);
    let sweep = scanner.sweep(&mut world);
    println!(
        "sweep {}: {} domains seeded, {} DNS queries, {} NS failures",
        sweep.date, sweep.stats.seeded, sweep.stats.queries, sweep.stats.ns_failures,
    );

    // Classify name-server composition (the Figure 1 metric).
    let mut ns = CompositionSeries::new(InfraKind::NameServers);
    ns.observe(&sweep);
    let c = *ns.at(sweep.date).expect("just observed");
    println!(
        "NS composition: full {:.1}%  partial {:.1}%  non {:.1}%  (of {} domains)",
        c.pct_full(),
        c.pct_partial(),
        c.pct_non(),
        c.known(),
    );

    // And hosting composition (the §3.1 text metric).
    let mut hosting = CompositionSeries::new(InfraKind::Hosting);
    hosting.observe(&sweep);
    let h = hosting.at(sweep.date).expect("just observed");
    println!(
        "hosting composition: full {:.1}%  partial {:.1}%  non {:.1}%",
        h.pct_full(),
        h.pct_partial(),
        h.pct_non(),
    );

    // Advance through the invasion and the Netnod event, then re-measure.
    world.advance_to(Date::from_ymd(2022, 3, 5));
    let sweep2 = scanner.sweep(&mut world);
    ns.observe(&sweep2);
    let c2 = ns.at(sweep2.date).expect("just observed");
    println!(
        "after 2022-03-05 (post-Netnod): full {:.1}%  partial {:.1}%  non {:.1}%",
        c2.pct_full(),
        c2.pct_partial(),
        c2.pct_non(),
    );
    println!(
        "full-Russian NS change: {:+.1} points",
        c2.pct_full() - c.pct_full()
    );
}
