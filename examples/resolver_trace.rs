//! A dig(+trace)-style tool over the simulated Internet: resolve any name
//! from the study world and print the full referral walk.
//!
//! ```sh
//! cargo run --release --example resolver_trace [name] [type]
//! # e.g.
//! cargo run --release --example resolver_trace ns4-cloud.nic.ru A
//! ```

use ruwhere::authdns::{IterativeResolver, TraceEvent};
use ruwhere::dns::{Name, RType};
use ruwhere::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rtype = match args.get(1).map(String::as_str) {
        Some("NS") | Some("ns") => RType::Ns,
        Some("MX") | Some("mx") => RType::Mx,
        _ => RType::A,
    };

    let mut world = World::new(WorldConfig::tiny());
    world.publish_tld_zones();

    let qname: Name = match args.first() {
        Some(s) => s.parse().expect("invalid name"),
        None => {
            // No argument: pick the first seeded domain.
            let d = world
                .seed_names()
                .into_iter()
                .next()
                .expect("world has domains");
            Name::from(&d)
        }
    };

    let mut resolver = IterativeResolver::new(world.scanner_ip(), world.root_hints());
    resolver.enable_trace();
    println!(
        ";; resolving {qname} IN {rtype} from {}\n",
        world.scanner_ip()
    );

    let result = resolver.resolve(world.network_mut(), &qname, rtype);
    for ev in resolver.take_trace() {
        match ev {
            TraceEvent::Query {
                server,
                qname,
                rtype,
            } => {
                println!(";; -> query {server:<16} {qname} IN {rtype}")
            }
            TraceEvent::Referral {
                cut,
                glue,
                rejected_glue,
            } => {
                println!(";; <- referral below {cut} ({glue} glue, {rejected_glue} rejected)")
            }
            TraceEvent::Timeout { server } => println!(";; !! timeout from {server}"),
            TraceEvent::ServFail { server } => println!(";; !! SERVFAIL from {server}"),
            TraceEvent::Lame { server } => println!(";; !! lame answer from {server}"),
            TraceEvent::Truncated { server } => println!(";; !! truncated reply from {server}"),
            TraceEvent::Cname { target } => println!(";; <- CNAME chase to {target}"),
            TraceEvent::Done { outcome } => println!(";; == {outcome}"),
        }
    }

    println!();
    match result {
        Ok(res) => {
            for ip in res.addresses() {
                let geo = world.geo().lookup(world.today(), ip);
                let asn = world.network().topology().asn_of(ip);
                println!(
                    "{qname}\t300\tIN\t{rtype}\t{ip}   ; {} {}",
                    asn.map(|a| a.to_string()).unwrap_or_default(),
                    geo.map(|c| c.to_string()).unwrap_or_default(),
                );
            }
            for ns in res.ns_targets() {
                println!("{qname}\t3600\tIN\tNS\t{ns}");
            }
        }
        Err(e) => println!(";; resolution failed: {e}"),
    }
    println!("\n;; {} queries on the wire", resolver.queries_sent());
}
