//! Fault injection end to end: schedule a TLD-server outage on the world
//! timeline, watch the sweep degrade into a salvaged partial sweep, and
//! recover the series with flagged imputation (the footnote-8 pipeline).
//!
//! ```sh
//! cargo run --release --example fault_demo
//! ```

use ruwhere::prelude::*;

fn main() {
    // A ~500-domain world, with one extra timeline event: the .ru TLD
    // servers go dark for 20 hours on 2022-01-20 (modelled on the real
    // 2021-03-22 measurement outage behind the paper's footnote 8).
    let outage = Date::from_ymd(2022, 1, 20);
    let mut cfg = WorldConfig::tiny();
    cfg.extra_events.push((
        outage,
        ConflictEvent::InfrastructureFault(InfraFault {
            target: FaultTarget::RuTldServers,
            duration_hours: 20,
        }),
    ));
    let mut world = World::new(cfg);

    let mut scanner = OpenIntelScanner::new(&world);
    let mut ns = CompositionSeries::new(InfraKind::NameServers);

    for date in [outage.add_days(-1), outage, outage.add_days(1)] {
        world.advance_to(date);
        let sweep = scanner.sweep(&mut world);
        ns.observe(&sweep);
        let s = &sweep.stats;
        println!(
            "{}: {:>3}/{} records  [{}]  timeouts {}  servfails {}  lame {}  retries {}",
            sweep.date,
            sweep.domains.len(),
            s.seeded,
            if sweep.is_partial() {
                "PARTIAL"
            } else {
                "full   "
            },
            s.timeouts,
            s.servfails,
            s.lame,
            s.retries_spent,
        );
    }

    // The raw series keeps the dip visible; imputed_at() patches the gap
    // from the nearest clean sweep and says so.
    let raw = ns.at(outage).expect("swept").total();
    let (imputed, flagged) = ns.imputed_at(outage, 7).expect("swept");
    println!(
        "\nraw series on {outage}: {raw} records (partial day: {})",
        ns.is_partial_day(outage),
    );
    println!(
        "imputed_at({outage}, 7 days): {} records, imputed = {flagged}",
        imputed.total(),
    );
}
