//! Provider exodus analysis (paper §3.4, Figures 4, 6, 7): what happened
//! to domains hosted at Amazon, Sedo, Cloudflare and Google after each
//! provider's March 2022 announcement.
//!
//! ```sh
//! cargo run --release --example provider_exodus [scale]
//! ```
//!
//! `scale` is the world scale denominator (default 2000 ≈ 2.5k domains;
//! use 100 for the full paper scale — slower).

use ruwhere::prelude::*;
use ruwhere::scan::WhoisClient;
use ruwhere::world::World;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let mut world_cfg = WorldConfig::paper_scale(scale);
    // Focus on the conflict window to keep the run short.
    world_cfg.start = Date::from_ymd(2022, 1, 1);
    world_cfg.cert_start = Date::from_ymd(2022, 1, 1);

    let mut cfg = StudyConfig::paper_schedule(world_cfg);
    cfg.verbose = true;
    eprintln!(
        "running study at 1:{scale} scale ({} sweeps)…",
        cfg.sweep_dates().len()
    );
    let results = run_study(&cfg);
    eprintln!(
        "done: {} sweeps, {} DNS queries\n",
        results.sweeps_run, results.total_queries
    );

    // Figure 4: hosting shares through the window.
    println!("{}", figures::fig4_series(&results).render());

    // Figures 6 and 7: movement out of Amazon and Sedo.
    let end = results.retained.keys().next_back().copied().unwrap();
    for (asn, label, start, paper) in [
        (
            Asn::AMAZON,
            "Figure 6 (Amazon)",
            Date::from_ymd(2022, 3, 8),
            ">50% relocated, 43% remained, 574 new + 988 relocated in",
        ),
        (
            Asn::SEDO,
            "Figure 7 (Sedo)",
            Date::from_ymd(2022, 3, 8),
            "98% relocated, 2.7k remained, 311 in",
        ),
    ] {
        if let Some((table, report)) =
            figures::movement_table(&results, asn, label, start, end, paper)
        {
            println!("{}", table.render());
            let dests = report.destinations();
            if let Some((top_dest, n)) = dests.iter().max_by_key(|(_, n)| **n) {
                println!("largest destination: {top_dest} ({n} domains)\n");
            }
        }
    }

    // §3.4 summary for all four named providers.
    println!("{}", figures::provider_actions_table(&results).render());

    // Footnote 10: confirm the Amazon arrivals' registration dates over
    // WHOIS, exactly as the paper did with Cisco's Whois Domain API. (We
    // re-create the end-state world deterministically — same seed — to
    // query its registry.)
    if let Some((_, amazon)) = figures::movement_table(
        &results,
        Asn::AMAZON,
        "check",
        Date::from_ymd(2022, 3, 8),
        end,
        "",
    ) {
        let mut arrivals = amazon.relocated_in.clone();
        arrivals.extend(amazon.newly_registered.clone());
        if !arrivals.is_empty() {
            let mut world = World::new(cfg.world.clone());
            world.advance_to(cfg.world.end);
            world.publish_tld_zones();
            let whois = WhoisClient::new(&world);
            let total_arrivals = arrivals.len();
            let classified =
                whois.classify_arrivals(&mut world, arrivals, Date::from_ymd(2022, 3, 8));
            println!(
                "WHOIS check of {} Amazon arrivals: {} newly registered, {} preexisting, {} unknown",
                total_arrivals,
                classified.newly_registered.len(),
                classified.preexisting.len(),
                classified.unknown.len(),
            );
            println!("(paper: 574 newly registered + 988 relocated existing domains)");
        }
    }
}
