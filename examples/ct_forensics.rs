//! WebPKI forensics (paper §4): CA issuance shifts, revocation sweeps, the
//! Russian Trusted Root CA — plus a CT-monitor workout proving the log is
//! append-only.
//!
//! ```sh
//! cargo run --release --example ct_forensics
//! ```

use ruwhere::ct::ctlog::{verify_consistency, verify_inclusion};
use ruwhere::prelude::*;

fn main() {
    let mut world = World::new(WorldConfig::tiny());

    // Take a CT monitor's checkpoint mid-January …
    world.advance_to(Date::from_ymd(2022, 1, 15));
    let checkpoint = world.ct_log().sth();
    println!(
        "CT checkpoint: size {} root {:02x}{:02x}…",
        checkpoint.tree_size, checkpoint.root[0], checkpoint.root[1]
    );

    // … then run through the conflict window.
    world.advance_to(Date::from_ymd(2022, 5, 15));
    world.finalize_ocsp();
    let head = world.ct_log().sth();
    println!(
        "CT head:       size {} root {:02x}{:02x}…",
        head.tree_size, head.root[0], head.root[1]
    );

    // The monitor verifies append-only growth with a consistency proof.
    let proof = world
        .ct_log()
        .consistency_proof(checkpoint.tree_size, head.tree_size)
        .expect("both sizes are historical");
    assert!(verify_consistency(&checkpoint.root, &head.root, &proof));
    println!(
        "consistency proof: {} nodes — log is append-only ✓",
        proof.path.len()
    );

    // Spot-check an inclusion proof for the first post-conflict entry.
    let idx = world
        .ct_log()
        .entries()
        .iter()
        .position(|e| e.timestamp >= CONFLICT_START)
        .expect("post-conflict issuance exists") as u64;
    let inclusion = world.ct_log().inclusion_proof(idx, head.tree_size).unwrap();
    let leaf = world.ct_log().leaf_at(idx).unwrap();
    assert!(verify_inclusion(&leaf, &inclusion, &head.root));
    println!(
        "inclusion proof for entry {idx}: {} nodes ✓\n",
        inclusion.audit_path.len()
    );

    // §4.1: who issues for .ru/.рф in each period?
    let certs = CertDataset::from_log(
        world.ct_log(),
        Date::from_ymd(2022, 1, 1),
        Date::from_ymd(2022, 5, 15),
        MatchRule::CnOrSan,
    );
    println!("{} certificates matched .ru/.рф in the window", certs.len());
    let issuance = CaIssuanceAnalysis::new(&certs);
    let timeline = issuance.timeline(10);
    println!("\nper-CA issuance (top 10):");
    for org in issuance.top_orgs(10) {
        let last = timeline.last_issuance(&org).unwrap();
        let stopped = timeline.stopped_by(&org, Date::from_ymd(2022, 5, 15), 7);
        println!(
            "  {org:<26} last issued {last}  {}",
            if stopped { "← STOPPED" } else { "" }
        );
    }

    // §4.2: revocation rates, overall vs sanctioned.
    let sanctions = world.sanctions().clone();
    let revocation = RevocationAnalysis::new(
        &certs,
        world.ocsp(),
        &sanctions,
        Date::from_ymd(2022, 5, 15),
    );
    println!("\nrevocation activity (top 5 by revocations):");
    for row in revocation.top_by_revocations(5) {
        println!(
            "  {:<26} issued {:>6} revoked {:>4} ({:>6}) | sanctioned {}/{} ({:.0}%)",
            row.org,
            row.issued,
            row.revoked,
            format!("{:.2}%", row.rate()),
            row.sanctioned_revoked,
            row.sanctioned_issued,
            row.sanctioned_rate(),
        );
    }
    println!(
        "CAs revoking 100% of sanctioned certs: {:?} (paper: DigiCert, Sectigo)",
        revocation.full_sanctioned_revokers()
    );

    // §4.3: the Russian Trusted Root CA is invisible to CT — find it by
    // scanning served chains.
    let mut scanner = IpScanner::new(&world);
    let snapshot = scanner.scan(&mut world);
    let analysis =
        RussianCaAnalysis::new(&snapshot, &certs, &sanctions, Date::from_ymd(2022, 5, 15));
    println!(
        "\nRussian Trusted Root CA: {} served certs ({} on .ru, {} on .рф), {}–{:.0}% of sanctioned list, {} in CT",
        analysis.unique_certs,
        analysis.domains_by_tld.get("ru").copied().unwrap_or(0),
        analysis.domains_by_tld.get("xn--p1ai").copied().unwrap_or(0),
        analysis.sanctioned_covered,
        100.0 * analysis.sanctioned_coverage(),
        analysis.in_ct,
    );
}
