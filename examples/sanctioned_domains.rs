//! Sanctioned-domain analysis (paper §3.3, Figure 5): follow the 107
//! OFAC/UK-listed domains' name-server composition through the Netnod
//! cutoff of 2022-03-03.
//!
//! ```sh
//! cargo run --release --example sanctioned_domains
//! ```

use ruwhere::prelude::*;

fn main() {
    let mut world = World::new(WorldConfig::tiny());
    let sanctions = world.sanctions().clone();
    println!(
        "tracking {} sanctioned domains (sources: US OFAC SDN, UK list)\n",
        sanctions.len()
    );

    let mut scanner = OpenIntelScanner::new(&world);
    let mut series = CompositionSeries::sanctioned(InfraKind::NameServers, sanctions.clone());

    // Measure daily across the window the paper's Figure 5 plots.
    let dates: Vec<Date> = Date::from_ymd(2022, 2, 22)
        .to(Date::from_ymd(2022, 3, 10))
        .collect();
    for date in dates {
        world.advance_to(date);
        let sweep = scanner.sweep(&mut world);
        series.observe(&sweep);
    }

    println!("date        full%   partial%   non%   #sanctioned");
    for (date, c) in series.rows() {
        println!(
            "{date}  {:6.1}  {:8.1}  {:5.1}   {}",
            c.pct_full(),
            c.pct_partial(),
            c.pct_non(),
            c.total()
        );
    }

    // The paper's headline: partial collapses to full around March 3-4,
    // because the Netnod-hosted secondaries were re-homed to Russia.
    let before = series.at(Date::from_ymd(2022, 3, 2)).unwrap();
    let after = series.at(Date::from_ymd(2022, 3, 4)).unwrap();
    println!(
        "\nNetnod effect: partial {:.1}% → {:.1}%, full {:.1}% → {:.1}%",
        before.pct_partial(),
        after.pct_partial(),
        before.pct_full(),
        after.pct_full(),
    );
    println!("(paper: 34.0% partial on 2022-02-24; 93.8% full by 2022-03-04)");

    // Which individual sanctioned domains are still not fully Russian?
    world.publish_tld_zones();
    let sweep = scanner.sweep(&mut world);
    let mut holdouts = Vec::new();
    for rec in &sweep.domains {
        if !sanctions.is_sanctioned(&rec.domain, sweep.date) {
            continue;
        }
        let c = Composition::classify(rec.ns_addrs.iter().map(|a| a.country));
        if !matches!(c, Composition::Full) {
            holdouts.push((rec.domain.clone(), c));
        }
    }
    println!("\nholdouts (NS not fully Russian) on {}:", sweep.date);
    for (domain, c) in holdouts {
        println!("  {domain}: {c:?}");
    }
}
